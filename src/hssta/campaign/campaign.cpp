#include "hssta/campaign/campaign.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <poll.h>
#include <set>
#include <sstream>
#include <unistd.h>
#include <utility>

#include "hssta/campaign/process.hpp"
#include "hssta/check/check.hpp"
#include "hssta/exec/executor.hpp"
#include "hssta/flow/report.hpp"
#include "hssta/incr/scenario.hpp"
#include "hssta/util/error.hpp"
#include "hssta/util/hash.hpp"

namespace hssta::campaign {

namespace fs = std::filesystem;

namespace {

constexpr size_t kNone = std::numeric_limits<size_t>::max();

uint64_t parse_fp(const std::string& hex) {
  // strtoull alone would accept a leading sign; fingerprints from shards
  // and handshakes are externally supplied, so insist on pure hex digits.
  bool all_hex = hex.size() == 16;
  for (const char c : hex)
    all_hex = all_hex && std::isxdigit(static_cast<unsigned char>(c));
  HSSTA_REQUIRE(all_hex, "fingerprint must be 16 hex digits, got '" + hex +
                             "'");
  return std::strtoull(hex.c_str(), nullptr, 16);
}

/// Ignore SIGPIPE only for the coordinator's lifetime — a dead worker's
/// stdin write must raise EPIPE, but an embedding process keeps its own
/// disposition once run_campaign returns.
struct SigpipeIgnore {
  void (*prev)(int);
  SigpipeIgnore() : prev(std::signal(SIGPIPE, SIG_IGN)) {}
  ~SigpipeIgnore() {
    if (prev != SIG_ERR) std::signal(SIGPIPE, prev);
  }
};

/// Everything both sides of the protocol derive from (spec_path, config):
/// the analyzed base design, its fingerprint, and the expanded scenario
/// list with resolved changes and content fingerprints. A pure function
/// of its inputs — coordinator, every worker, and every resumed run
/// compute the identical value (the ready handshake asserts it).
struct Prepared {
  CampaignSpec spec;
  flow::Design design;
  uint64_t base_fp = 0;
  std::vector<CampaignScenario> scenarios;
  std::vector<incr::Scenario> resolved;  ///< same order as `scenarios`
  std::vector<uint64_t> fps;

  Prepared(CampaignSpec s, flow::Design d)
      : spec(std::move(s)), design(std::move(d)) {}
};

Prepared prepare(const std::string& spec_path, const flow::Config& cfg) {
  CampaignSpec spec = parse_campaign_file(spec_path);
  flow::Design design = build_base_design(spec, cfg);
  Prepared p(std::move(spec), std::move(design));

  // Lint the base design before the first (expensive) full analysis: every
  // worker would hit the same defect as a deep exception mid-campaign, so
  // reject it once, up front, with the named diagnostics.
  const check::Report lint = p.design.check();
  if (lint.worst() == check::Severity::kError)
    throw Error("campaign: base design failed static checks:\n" +
                lint.summary());

  (void)p.design.analyze_incremental();  // first full build, warm base
  p.base_fp = incr::state_fingerprint(p.design.incremental());
  p.scenarios = expand(p.spec);

  // Resolve wire changes into engine changes, loading each variant model
  // once (shared across every scenario that swaps it in).
  std::map<std::string, std::shared_ptr<const model::TimingModel>> models;
  p.resolved.reserve(p.scenarios.size());
  p.fps.reserve(p.scenarios.size());
  for (const CampaignScenario& sc : p.scenarios) {
    incr::Scenario s;
    s.label = sc.label;
    s.changes.reserve(sc.changes.size());
    for (const serve::ChangeSpec& c : sc.changes) {
      if (c.op == serve::ChangeSpec::Op::kSwap) {
        std::shared_ptr<const model::TimingModel>& m = models[c.file];
        if (!m) m = flow::load_variant_model(c.file, cfg);
        s.changes.push_back(incr::ReplaceModule{c.inst, m});
      } else {
        s.changes.push_back(serve::resolve_change(c, cfg));
      }
    }
    p.fps.push_back(incr::scenario_fingerprint(p.base_fp, s.changes));
    p.resolved.push_back(std::move(s));
  }

  // The spec parser rejects structurally identical scenarios; two paths
  // to byte-identical variant files still collide here, by content.
  std::set<uint64_t> unique(p.fps.begin(), p.fps.end());
  HSSTA_REQUIRE(unique.size() == p.fps.size(),
                "campaign: two scenarios share a content fingerprint (swap "
                "axes listing byte-identical variant files?)");
  return p;
}

void atomic_write(const fs::path& target, const std::string& text) {
  const fs::path tmp =
      target.parent_path() / (".tmp-" + target.filename().string() + "-" +
                              std::to_string(::getpid()));
  {
    std::ofstream os(tmp);
    if (!os) throw Error("cannot open for writing: " + tmp.string());
    os << text;
    os.flush();
    if (!os) {
      std::error_code ec;
      fs::remove(tmp, ec);
      throw Error("write failed: " + tmp.string());
    }
  }
  std::error_code ec;
  fs::rename(tmp, target, ec);
  if (ec) {
    std::error_code ec2;
    fs::remove(tmp, ec2);
    throw Error("cannot publish " + target.string() + ": " + ec.message());
  }
}

ShardData make_shard(const CampaignScenario& sc, uint64_t fp, uint64_t base_fp,
                     const incr::ScenarioResult& r) {
  ShardData s;
  s.index = sc.index;
  s.label = sc.label;
  s.fingerprint = fp;
  s.base_fingerprint = base_fp;
  s.changes = r.changes;
  s.error = r.error;
  s.seconds = r.seconds;
  if (r.ok()) {
    s.mean = r.delay.nominal();
    s.sigma = r.delay.sigma();
    s.q90 = r.delay.quantile(0.90);
    s.q99 = r.delay.quantile(0.99);
    s.q9987 = r.delay.quantile(0.9987);
  }
  return s;
}

void write_shard(const std::string& out_dir, const ShardData& s) {
  const fs::path dir = fs::path(out_dir) / "shards";
  fs::create_directories(dir);
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_object();
  w.key("index").value(s.index);
  w.key("label").value(s.label);
  w.key("fingerprint").value(util::Fnv1a::hex(s.fingerprint));
  w.key("base_fingerprint").value(util::Fnv1a::hex(s.base_fingerprint));
  w.key("changes").value(s.changes);
  w.key("ok").value(s.ok());
  if (s.ok()) {
    w.key("delay").begin_object();
    w.key("mean").value(s.mean);
    w.key("sigma").value(s.sigma);
    w.key("q90").value(s.q90);
    w.key("q99").value(s.q99);
    w.key("q9987").value(s.q9987);
    w.end_object();
  } else {
    w.key("error").value(s.error);
  }
  w.key("seconds").value(s.seconds);
  w.end_object();
  atomic_write(shard_path(out_dir, s.fingerprint), os.str() + "\n");
}

/// The protocol/summary JSON helpers.

std::string ready_line(const Prepared& p) {
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_object();
  w.key("ok").value(true);
  w.key("ready").value(true);
  w.key("campaign").value(p.spec.name);
  w.key("base_fingerprint").value(util::Fnv1a::hex(p.base_fp));
  w.key("scenarios").value(p.scenarios.size());
  w.end_object();
  return os.str();
}

std::string scenario_request(size_t index, uint64_t fp) {
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_object();
  w.key("verb").value("scenario");
  w.key("index").value(index);
  w.key("fingerprint").value(util::Fnv1a::hex(fp));
  w.end_object();
  return os.str();
}

std::string error_line(const std::string& message) {
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_object();
  w.key("ok").value(false);
  w.key("error").value(message);
  w.end_object();
  return os.str();
}

}  // namespace

std::string shard_path(const std::string& out_dir, uint64_t fingerprint) {
  return (fs::path(out_dir) / "shards" /
          (util::Fnv1a::hex(fingerprint) + ".json"))
      .string();
}

std::optional<ShardData> read_shard(const std::string& path,
                                    uint64_t fingerprint,
                                    uint64_t base_fingerprint) {
  std::ifstream is(path);
  if (!is) return std::nullopt;
  std::ostringstream text;
  text << is.rdbuf();
  try {
    const util::JsonValue doc = util::JsonReader::parse(text.str());
    ShardData s;
    s.index = doc.at("index").as_count("index");
    s.label = doc.at("label").as_string();
    s.fingerprint = parse_fp(doc.at("fingerprint").as_string());
    s.base_fingerprint = parse_fp(doc.at("base_fingerprint").as_string());
    if (s.fingerprint != fingerprint ||
        s.base_fingerprint != base_fingerprint)
      return std::nullopt;  // stale: different spec/base wrote this shard
    s.changes = doc.at("changes").as_string();
    if (doc.at("ok").as_bool()) {
      const util::JsonValue& d = doc.at("delay");
      s.mean = d.at("mean").as_number();
      s.sigma = d.at("sigma").as_number();
      s.q90 = d.at("q90").as_number();
      s.q99 = d.at("q99").as_number();
      s.q9987 = d.at("q9987").as_number();
    } else {
      s.error = doc.at("error").as_string();
      HSSTA_REQUIRE(!s.error.empty(), "error shard with empty error");
    }
    s.seconds = doc.at("seconds").as_number();
    return s;
  } catch (const std::exception&) {
    // Truncated/corrupt shards read as "not done": the scenario simply
    // re-runs and atomically replaces the bad file.
    return std::nullopt;
  }
}

std::string default_worker_cmd() {
  std::error_code ec;
  const fs::path exe = fs::read_symlink("/proc/self/exe", ec);
  if (!ec) {
    const fs::path dir = exe.parent_path();
    for (const fs::path& cand :
         {dir / "hssta_cli", dir.parent_path() / "hssta_cli"})
      if (fs::exists(cand, ec)) return cand.string();
  }
  return "hssta_cli";
}

int worker_loop(const std::string& spec_path, const CampaignOptions& opts,
                std::istream& in, std::ostream& out) {
  // Workers analyze serially: the campaign's parallelism is the process
  // fan-out, and serial analysis is bit-identical anyway.
  CampaignOptions wopts = opts;
  wopts.config.threads = 1;
  std::optional<Prepared> prep;
  try {
    prep.emplace(prepare(spec_path, wopts.config));
  } catch (const std::exception& e) {
    // A broken handshake (bad spec, missing file) is a protocol error the
    // coordinator surfaces verbatim, not a silent worker death.
    out << error_line(e.what()) << '\n' << std::flush;
    return 1;
  }
  const Prepared& p = *prep;
  const incr::ScenarioRunner runner(p.design.incremental());

  out << ready_line(p) << '\n' << std::flush;

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::string response;
    try {
      const util::JsonValue doc = util::JsonReader::parse(line);
      const std::string& verb = doc.at("verb").as_string();
      if (verb == "shutdown") {
        std::ostringstream os;
        util::JsonWriter w(os);
        w.begin_object();
        w.key("ok").value(true);
        w.key("stopping").value(true);
        w.end_object();
        out << os.str() << '\n' << std::flush;
        return 0;
      }
      HSSTA_REQUIRE(verb == "scenario", "unknown worker verb '" + verb + "'");
      const size_t i = doc.at("index").as_count("index");
      HSSTA_REQUIRE(i < p.scenarios.size(),
                    "scenario index " + std::to_string(i) + " out of range");
      const uint64_t fp = parse_fp(doc.at("fingerprint").as_string());
      HSSTA_REQUIRE(fp == p.fps[i],
                    "scenario " + std::to_string(i) +
                        " fingerprint mismatch — coordinator and worker "
                        "expanded different campaigns");

      const std::vector<incr::Scenario> one{p.resolved[i]};
      const std::vector<incr::ScenarioResult> rs = runner.run(one);
      write_shard(wopts.out_dir, make_shard(p.scenarios[i], fp, p.base_fp,
                                            rs[0]));

      std::ostringstream os;
      util::JsonWriter w(os);
      w.begin_object();
      w.key("ok").value(true);
      w.key("index").value(i);
      w.key("fingerprint").value(util::Fnv1a::hex(fp));
      w.key("failed").value(!rs[0].ok());
      w.key("seconds").value(rs[0].seconds);
      w.end_object();
      response = os.str();
    } catch (const std::exception& e) {
      response = error_line(e.what());
    }
    out << response << '\n' << std::flush;
  }
  return 0;
}

RunStats run_campaign(const std::string& spec_path,
                      const CampaignOptions& opts) {
  HSSTA_REQUIRE(!opts.out_dir.empty(), "campaign needs an output directory");
  const Prepared p = prepare(spec_path, opts.config);
  fs::create_directories(fs::path(opts.out_dir) / "shards");

  RunStats stats;
  stats.total = p.scenarios.size();
  std::deque<size_t> queue;
  for (size_t i = 0; i < p.scenarios.size(); ++i) {
    if (read_shard(shard_path(opts.out_dir, p.fps[i]), p.fps[i], p.base_fp))
      ++stats.skipped;
    else
      queue.push_back(i);
  }
  const size_t budget =
      opts.limit == 0 ? queue.size() : std::min(opts.limit, queue.size());

  auto completed = [&](bool ok) {
    ++stats.executed;
    if (!ok) ++stats.failed;
  };

  if (budget == 0) {
    stats.remaining = queue.size();
    return stats;
  }

  if (opts.workers == 0) {
    // In-process reference path: the pending set as ONE ScenarioRunner
    // batch (bit-identical at any thread count by the runner's contract).
    std::vector<size_t> todo(queue.begin(), queue.begin() + budget);
    std::vector<incr::Scenario> batch;
    batch.reserve(todo.size());
    for (const size_t i : todo) batch.push_back(p.resolved[i]);
    const incr::ScenarioRunner runner(p.design.incremental());
    const std::shared_ptr<exec::Executor> ex =
        exec::make_executor(opts.config.threads);
    const std::vector<incr::ScenarioResult> rs = runner.run(batch, *ex);
    for (size_t k = 0; k < todo.size(); ++k) {
      const size_t i = todo[k];
      write_shard(opts.out_dir,
                  make_shard(p.scenarios[i], p.fps[i], p.base_fp, rs[k]));
      completed(rs[k].ok());
    }
    stats.remaining = stats.total - stats.skipped - stats.executed;
    return stats;
  }

  // Coordinator: single-threaded poll(2) loop over worker pipes. A dead
  // worker's stdin write raises EPIPE, not SIGPIPE.
  const SigpipeIgnore sigpipe_guard;

  std::vector<std::string> argv{
      opts.worker_cmd.empty() ? default_worker_cmd() : opts.worker_cmd,
      "campaign-worker", "--spec", spec_path, "--out", opts.out_dir};
  argv.insert(argv.end(), opts.worker_args.begin(), opts.worker_args.end());

  struct WorkerState {
    std::unique_ptr<Subprocess> proc;
    enum class St { kStarting, kIdle, kBusy, kDead } st = St::kStarting;
    size_t scenario = kNone;  ///< expansion index in flight
  };
  using St = WorkerState::St;

  std::vector<WorkerState> workers(std::min(opts.workers, budget));
  for (WorkerState& w : workers) w.proc = std::make_unique<Subprocess>(argv);

  size_t started = 0;  // dispatched-or-completed executions this run

  auto dispatch = [&](WorkerState& w) {
    if (started >= budget || queue.empty()) return;
    const size_t i = queue.front();
    queue.pop_front();
    w.scenario = i;
    w.st = St::kBusy;
    ++started;
    if (!w.proc->write_line(scenario_request(i, p.fps[i]))) {
      // Died before we could hand it work; its EOF will follow.
      queue.push_front(i);
      --started;
      w.scenario = kNone;
      w.st = St::kDead;
    }
  };

  auto requeue_in_flight = [&](WorkerState& w) {
    if (w.scenario == kNone) return;
    const size_t i = w.scenario;
    w.scenario = kNone;
    // The worker may have persisted the shard and died before replying —
    // the shard, not the reply, is the record of completion.
    if (const std::optional<ShardData> s =
            read_shard(shard_path(opts.out_dir, p.fps[i]), p.fps[i],
                       p.base_fp)) {
      completed(s->ok());
    } else {
      queue.push_front(i);
      --started;
      ++stats.redispatched;
    }
  };

  auto on_death = [&](WorkerState& w) {
    if (w.st == St::kDead) return;
    w.st = St::kDead;
    w.proc->close_stdin();
    requeue_in_flight(w);
  };

  auto handle_line = [&](WorkerState& w, const std::string& line) {
    util::JsonValue doc;
    try {
      doc = util::JsonReader::parse(line);
      HSSTA_REQUIRE(doc.is_object(), "worker line must be a JSON object");
    } catch (const std::exception&) {
      on_death(w);  // stray output = protocol violation; redispatch
      return;
    }
    if (w.st == St::kStarting) {
      // The ready handshake. A disagreeing worker means the spec or a
      // binary changed under the campaign — fatal, nothing was dispatched.
      if (!doc.at("ok").as_bool())
        throw Error("campaign worker failed to start: " +
                    doc.at("error").as_string());
      const uint64_t fp = parse_fp(doc.at("base_fingerprint").as_string());
      const size_t n = doc.at("scenarios").as_count("scenarios");
      HSSTA_REQUIRE(
          fp == p.base_fp && n == p.scenarios.size(),
          "campaign worker handshake mismatch: worker expanded " +
              std::to_string(n) + " scenarios over base " +
              util::Fnv1a::hex(fp) + ", coordinator " +
              std::to_string(p.scenarios.size()) + " over " +
              util::Fnv1a::hex(p.base_fp) +
              " — spec or binaries changed mid-campaign");
      w.st = St::kIdle;
      dispatch(w);
      return;
    }
    if (w.st != St::kBusy) {
      on_death(w);  // unsolicited chatter from an idle worker
      return;
    }
    bool ok = false;
    size_t index = kNone;
    bool failed = true;
    try {
      ok = doc.at("ok").as_bool();
      if (ok) {
        index = doc.at("index").as_count("index");
        failed = doc.at("failed").as_bool();
      }
    } catch (const std::exception&) {
      ok = false;
    }
    if (!ok || index != w.scenario) {
      on_death(w);  // internal worker error: redispatch elsewhere
      return;
    }
    w.scenario = kNone;
    w.st = St::kIdle;
    completed(!failed);
    dispatch(w);
  };

  for (;;) {
    // Scenarios requeued by a worker death (or a failed dispatch write)
    // must reach whoever is idle BEFORE we block in poll: at the campaign
    // tail every survivor may be idle, and an idle worker never writes,
    // so poll alone would wait forever.
    for (WorkerState& w : workers)
      if (w.st == St::kIdle) dispatch(w);

    const bool work_left = started < budget && !queue.empty();
    bool any_busy = false, any_alive = false;
    for (const WorkerState& w : workers) {
      any_busy = any_busy || w.st == St::kBusy || w.st == St::kStarting;
      any_alive = any_alive || w.st != St::kDead;
    }
    if (!any_busy && (!work_left || !any_alive)) {
      if (work_left)
        throw Error("all campaign workers died with " +
                    std::to_string(queue.size()) + " scenarios outstanding");
      break;
    }

    std::vector<pollfd> fds;
    std::vector<size_t> owner;
    for (size_t wi = 0; wi < workers.size(); ++wi) {
      if (workers[wi].st == St::kDead) continue;
      fds.push_back(pollfd{workers[wi].proc->out_fd(), POLLIN, 0});
      owner.push_back(wi);
    }
    int rc;
    while ((rc = ::poll(fds.data(), fds.size(), -1)) < 0 && errno == EINTR) {
    }
    if (rc < 0)
      throw Error(std::string("campaign poll failed: ") +
                  std::strerror(errno));

    for (size_t k = 0; k < fds.size(); ++k) {
      if (!(fds[k].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      WorkerState& w = workers[owner[k]];
      std::vector<std::string> lines;
      const bool open = w.proc->read_available(lines);
      for (const std::string& l : lines) {
        if (w.st == St::kDead) break;
        handle_line(w, l);
      }
      if (!open) on_death(w);
    }
  }

  // Graceful drain: ask the survivors to stop, close their stdin, reap.
  for (WorkerState& w : workers) {
    if (w.st != St::kDead) {
      (void)w.proc->write_line("{\"verb\":\"shutdown\"}");
      w.proc->close_stdin();
    }
    (void)w.proc->wait();
  }

  stats.remaining = stats.total - stats.skipped - stats.executed;
  return stats;
}

StatusReport campaign_status(const std::string& spec_path,
                             const CampaignOptions& opts) {
  HSSTA_REQUIRE(!opts.out_dir.empty(), "campaign needs an output directory");
  const Prepared p = prepare(spec_path, opts.config);
  StatusReport r;
  r.name = p.spec.name;
  r.base_fingerprint = util::Fnv1a::hex(p.base_fp);
  r.total = p.scenarios.size();
  for (size_t i = 0; i < p.scenarios.size(); ++i) {
    const std::optional<ShardData> s =
        read_shard(shard_path(opts.out_dir, p.fps[i]), p.fps[i], p.base_fp);
    if (!s) continue;
    ++r.done;
    if (!s->ok()) ++r.failed;
  }
  return r;
}

std::string merge_campaign(const std::string& spec_path,
                           const CampaignOptions& opts) {
  HSSTA_REQUIRE(!opts.out_dir.empty(), "campaign needs an output directory");
  const Prepared p = prepare(spec_path, opts.config);

  std::vector<ShardData> shards;
  shards.reserve(p.scenarios.size());
  size_t missing = 0;
  for (size_t i = 0; i < p.scenarios.size(); ++i) {
    std::optional<ShardData> s =
        read_shard(shard_path(opts.out_dir, p.fps[i]), p.fps[i], p.base_fp);
    if (!s) {
      ++missing;
      continue;
    }
    shards.push_back(std::move(*s));
  }
  if (missing > 0)
    throw Error("campaign incomplete: " + std::to_string(missing) + " of " +
                std::to_string(p.scenarios.size()) +
                " scenarios have no shard yet; finish the run first "
                "(campaign status shows progress)");

  // The report is a pure function of (expansion order, shard contents):
  // shard arrival order, worker count and resume history cannot show.
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_object();
  w.key("campaign").value(p.spec.name);
  w.key("topology").value(p.spec.topology);
  w.key("base").begin_object();
  w.key("fingerprint").value(util::Fnv1a::hex(p.base_fp));
  w.key("instances").value(p.design.num_instances());
  w.key("delay");
  flow::delay_json(w, p.design.incremental().delay());
  w.end_object();

  w.key("scenarios").begin_array();
  for (size_t i = 0; i < shards.size(); ++i) {
    const ShardData& s = shards[i];
    w.begin_object();
    // Position/label from the deterministic expansion (authoritative);
    // results + provenance from the shard.
    w.key("label").value(p.scenarios[i].label);
    w.key("index").value(i);
    w.key("fingerprint").value(util::Fnv1a::hex(s.fingerprint));
    w.key("changes").value(s.changes);
    w.key("ok").value(s.ok());
    if (s.ok()) {
      w.key("delay").begin_object();
      w.key("mean").value(s.mean);
      w.key("sigma").value(s.sigma);
      w.key("q90").value(s.q90);
      w.key("q99").value(s.q99);
      w.key("q9987").value(s.q9987);
      w.end_object();
    } else {
      w.key("error").value(s.error);
    }
    w.end_object();
  }
  w.end_array();

  std::vector<const ShardData*> ok_shards;
  for (const ShardData& s : shards)
    if (s.ok()) ok_shards.push_back(&s);

  w.key("aggregate").begin_object();
  w.key("count").value(shards.size());
  w.key("ok").value(ok_shards.size());
  w.key("failed").value(shards.size() - ok_shards.size());
  if (!ok_shards.empty()) {
    // Fixed index-order folds, so the aggregates are bit-stable too.
    const auto stat = [&](const char* key, double ShardData::* field) {
      double lo = ok_shards.front()->*field, hi = lo, sum = 0.0;
      for (const ShardData* s : ok_shards) {
        lo = std::min(lo, s->*field);
        hi = std::max(hi, s->*field);
        sum += s->*field;
      }
      w.key(key).begin_object();
      w.key("min").value(lo);
      w.key("max").value(hi);
      w.key("mean").value(sum / static_cast<double>(ok_shards.size()));
      w.end_object();
    };
    w.key("delay").begin_object();
    stat("mean", &ShardData::mean);
    stat("sigma", &ShardData::sigma);
    stat("q90", &ShardData::q90);
    stat("q99", &ShardData::q99);
    stat("q9987", &ShardData::q9987);
    w.end_object();
  }
  w.end_object();

  // Worst-scenario ranking: q99 descending, index ascending on ties.
  std::vector<const ShardData*> ranked = ok_shards;
  std::sort(ranked.begin(), ranked.end(),
            [](const ShardData* a, const ShardData* b) {
              if (a->q99 != b->q99) return a->q99 > b->q99;
              return a->index < b->index;
            });
  if (ranked.size() > 10) ranked.resize(10);
  w.key("worst").begin_array();
  for (const ShardData* s : ranked) {
    w.begin_object();
    w.key("index").value(s->index);
    w.key("label").value(s->label);
    w.key("fingerprint").value(util::Fnv1a::hex(s->fingerprint));
    w.key("q99").value(s->q99);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  const std::string json = os.str() + "\n";
  atomic_write(fs::path(opts.out_dir) / "campaign.json", json);
  return json;
}

}  // namespace hssta::campaign
