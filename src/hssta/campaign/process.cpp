#include "hssta/campaign/process.hpp"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include "hssta/util/error.hpp"

namespace hssta::campaign {

namespace {

void close_fd(int& fd) {
  if (fd >= 0) ::close(fd);
  fd = -1;
}

}  // namespace

Subprocess::Subprocess(const std::vector<std::string>& argv) {
  HSSTA_REQUIRE(!argv.empty(), "subprocess needs a command");
  int to_child[2], from_child[2];
  if (::pipe(to_child) != 0)
    throw Error(std::string("pipe failed: ") + std::strerror(errno));
  if (::pipe(from_child) != 0) {
    ::close(to_child[0]);
    ::close(to_child[1]);
    throw Error(std::string("pipe failed: ") + std::strerror(errno));
  }

  pid_ = ::fork();
  if (pid_ < 0) {
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    throw Error(std::string("fork failed: ") + std::strerror(errno));
  }
  if (pid_ == 0) {
    // Child: stdin/stdout onto the pipes, stderr inherited.
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    std::vector<char*> args;
    args.reserve(argv.size() + 1);
    for (const std::string& a : argv) args.push_back(const_cast<char*>(a.c_str()));
    args.push_back(nullptr);
    ::execv(args[0], args.data());
    // exec failed: the parent sees EOF + exit 127 (the shell convention).
    _exit(127);
  }

  // Parent.
  ::close(to_child[0]);
  ::close(from_child[1]);
  in_fd_ = to_child[1];
  out_fd_ = from_child[0];
}

Subprocess::~Subprocess() {
  close_fd(in_fd_);
  close_fd(out_fd_);
  if (pid_ > 0) {
    int status = 0;
    if (::waitpid(pid_, &status, WNOHANG) == 0) {
      ::kill(pid_, SIGKILL);
      ::waitpid(pid_, &status, 0);
    }
    pid_ = -1;
  }
}

bool Subprocess::write_line(const std::string& line) {
  if (in_fd_ < 0) return false;
  std::string out = line;
  out += '\n';
  size_t off = 0;
  while (off < out.size()) {
    // MSG_NOSIGNAL is socket-only; mask SIGPIPE per write via send-like
    // semantics is unavailable on pipes, so rely on the process-wide
    // SIG_IGN the coordinator installs (see run_campaign) and treat EPIPE
    // as a dead worker.
    const ssize_t n = ::write(in_fd_, out.data() + off, out.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      close_fd(in_fd_);
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

bool Subprocess::read_available(std::vector<std::string>& lines) {
  // One read per poll wakeup (the fd is blocking; the caller polls before
  // calling, so exactly one read never stalls).
  char buf[4096];
  ssize_t n;
  while ((n = ::read(out_fd_, buf, sizeof buf)) < 0 && errno == EINTR) {
  }
  const bool open = n > 0;
  if (open) buffer_.append(buf, static_cast<size_t>(n));
  for (size_t pos; (pos = buffer_.find('\n')) != std::string::npos;) {
    lines.push_back(buffer_.substr(0, pos));
    buffer_.erase(0, pos + 1);
  }
  if (!open && !buffer_.empty()) {
    // EOF with an unterminated tail: surface it as a final line.
    lines.push_back(buffer_);
    buffer_.clear();
  }
  return open;
}

void Subprocess::close_stdin() { close_fd(in_fd_); }

int Subprocess::wait() {
  if (pid_ <= 0) return -1;
  int status = 0;
  while (::waitpid(pid_, &status, 0) < 0 && errno == EINTR) {
  }
  pid_ = -1;
  return status;
}

}  // namespace hssta::campaign
