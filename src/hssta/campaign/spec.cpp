#include "hssta/campaign/spec.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "hssta/util/error.hpp"

namespace hssta::campaign {

namespace fs = std::filesystem;

namespace {

/// %g formatting for labels (matches describe_change — labels are
/// human-facing, the %.17g precision lives in the JSON payloads).
std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

/// Reject unknown keys so a typo ("scale" for "scales") fails loudly
/// instead of silently shrinking the campaign. "description"/"notes" are
/// annotation slots, allowed everywhere.
void check_keys(const util::JsonValue& obj, const char* what,
                std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : obj.members()) {
    if (key == "description" || key == "notes") continue;
    bool known = false;
    for (const char* k : allowed) known = known || key == k;
    if (!known)
      throw Error(std::string("campaign spec: unknown key '") + key +
                  "' in " + what);
  }
}

std::string resolve_path(const std::string& file, const std::string& base_dir) {
  if (base_dir.empty() || fs::path(file).is_absolute()) return file;
  return (fs::path(base_dir) / file).string();
}

size_t count_field(const util::JsonValue& obj, const std::string& key) {
  return static_cast<size_t>(obj.at(key).as_count(key));
}

Axis parse_axis(const util::JsonValue& a, const std::string& base_dir) {
  HSSTA_REQUIRE(a.is_object(), "campaign spec: axis must be an object");
  const std::string& type = a.at("type").as_string();
  Axis axis;
  if (type == "sigma") {
    check_keys(a, "sigma axis", {"type", "param", "scales"});
    const size_t param = count_field(a, "param");
    const util::JsonValue& scales = a.at("scales");
    HSSTA_REQUIRE(scales.is_array(),
                  "campaign spec: sigma axis 'scales' must be an array");
    for (const util::JsonValue& s : scales.items()) {
      serve::ChangeSpec c;
      c.op = serve::ChangeSpec::Op::kSigma;
      c.param = param;
      c.scale = s.as_number();
      axis.values.push_back(
          {"p" + std::to_string(param) + "x" + fmt(c.scale), c});
    }
  } else if (type == "swap") {
    check_keys(a, "swap axis", {"type", "inst", "files"});
    const size_t inst = count_field(a, "inst");
    const util::JsonValue& files = a.at("files");
    HSSTA_REQUIRE(files.is_array(),
                  "campaign spec: swap axis 'files' must be an array");
    for (const util::JsonValue& f : files.items()) {
      serve::ChangeSpec c;
      c.op = serve::ChangeSpec::Op::kSwap;
      c.inst = inst;
      c.file = resolve_path(f.as_string(), base_dir);
      HSSTA_REQUIRE(!f.as_string().empty(),
                    "campaign spec: swap axis file must be non-empty");
      axis.values.push_back(
          {"u" + std::to_string(inst) + "=" + f.as_string(), c});
    }
  } else if (type == "move") {
    check_keys(a, "move axis", {"type", "inst", "points"});
    const size_t inst = count_field(a, "inst");
    const util::JsonValue& points = a.at("points");
    HSSTA_REQUIRE(points.is_array(),
                  "campaign spec: move axis 'points' must be an array");
    for (const util::JsonValue& p : points.items()) {
      HSSTA_REQUIRE(p.is_array() && p.items().size() == 2,
                    "campaign spec: move axis point must be [x, y]");
      serve::ChangeSpec c;
      c.op = serve::ChangeSpec::Op::kMove;
      c.inst = inst;
      c.x = p.items()[0].as_number();
      c.y = p.items()[1].as_number();
      axis.values.push_back({"u" + std::to_string(inst) + "@(" + fmt(c.x) +
                                 "," + fmt(c.y) + ")",
                             c});
    }
  } else if (type == "rewire") {
    check_keys(a, "rewire axis", {"type", "conn", "routes"});
    const size_t conn = count_field(a, "conn");
    const util::JsonValue& routes = a.at("routes");
    HSSTA_REQUIRE(routes.is_array(),
                  "campaign spec: rewire axis 'routes' must be an array");
    for (const util::JsonValue& r : routes.items()) {
      HSSTA_REQUIRE(r.is_object(),
                    "campaign spec: rewire axis route must be an object");
      check_keys(r, "rewire route",
                 {"from_inst", "from_port", "to_inst", "to_port"});
      serve::ChangeSpec c;
      c.op = serve::ChangeSpec::Op::kRewire;
      c.conn = conn;
      c.from = hier::PortRef{count_field(r, "from_inst"),
                             count_field(r, "from_port")};
      c.to =
          hier::PortRef{count_field(r, "to_inst"), count_field(r, "to_port")};
      axis.values.push_back(
          {"c" + std::to_string(conn) + "->u" +
               std::to_string(c.from.instance) + ".o" +
               std::to_string(c.from.port) + ":u" +
               std::to_string(c.to.instance) + ".i" + std::to_string(c.to.port),
           c});
    }
  } else {
    throw Error("campaign spec: unknown axis type '" + type + "'");
  }
  HSSTA_REQUIRE(!axis.values.empty(),
                "campaign spec: axis '" + type + "' has no values");
  return axis;
}

/// Structural identity of a change list (file paths as given — duplicate
/// detection runs before models load, so it keys on the spec's own
/// content; distinct paths to identical files are caught later by the
/// content fingerprint when shards collide).
std::string change_list_key(const std::vector<serve::ChangeSpec>& changes) {
  std::ostringstream os;
  for (const serve::ChangeSpec& c : changes) {
    switch (c.op) {
      case serve::ChangeSpec::Op::kSwap:
        os << "swap " << c.inst << ' ' << c.file << '\n';
        break;
      case serve::ChangeSpec::Op::kMove:
        os << "move " << c.inst << ' ' << c.x << ' ' << c.y << '\n';
        break;
      case serve::ChangeSpec::Op::kRewire:
        os << "rewire " << c.conn << ' ' << c.from.instance << ' '
           << c.from.port << ' ' << c.to.instance << ' ' << c.to.port << '\n';
        break;
      case serve::ChangeSpec::Op::kSigma:
        os << "sigma " << c.param << ' ' << c.scale << '\n';
        break;
    }
  }
  return os.str();
}

}  // namespace

CampaignSpec parse_campaign(const util::JsonValue& doc,
                            const std::string& base_dir) {
  HSSTA_REQUIRE(doc.is_object(), "campaign spec must be a JSON object");
  check_keys(doc, "campaign", {"name", "base", "axes"});

  CampaignSpec spec;
  spec.name = doc.at("name").as_string();
  HSSTA_REQUIRE(!spec.name.empty(), "campaign spec: name must be non-empty");

  const util::JsonValue& base = doc.at("base");
  HSSTA_REQUIRE(base.is_object(), "campaign spec: base must be an object");
  check_keys(base, "base", {"topology", "files"});
  spec.topology = base.at("topology").as_string();
  HSSTA_REQUIRE(spec.topology == "chain" || spec.topology == "star",
                "campaign spec: topology must be 'chain' or 'star', got '" +
                    spec.topology + "'");
  const util::JsonValue& files = base.at("files");
  HSSTA_REQUIRE(files.is_array() && files.items().size() >= 2,
                "campaign spec: base needs a files array of >= 2 entries");
  for (const util::JsonValue& f : files.items())
    spec.files.push_back(resolve_path(f.as_string(), base_dir));

  const util::JsonValue& axes = doc.at("axes");
  HSSTA_REQUIRE(axes.is_array() && !axes.items().empty(),
                "campaign spec: axes must be a non-empty array");
  for (const util::JsonValue& a : axes.items())
    spec.axes.push_back(parse_axis(a, base_dir));
  return spec;
}

CampaignSpec parse_campaign_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw Error("cannot open campaign spec: " + path);
  std::ostringstream text;
  text << is.rdbuf();
  try {
    return parse_campaign(util::JsonReader::parse(text.str()),
                          fs::path(path).parent_path().string());
  } catch (const Error& e) {
    throw Error(std::string(e.what()) + " (in " + path + ")");
  }
}

std::vector<CampaignScenario> expand(const CampaignSpec& spec) {
  // Low enough that the error below fires long before the expansion
  // itself would exhaust memory — a campaign this size is days of work.
  constexpr size_t kMaxScenarios = 1'000'000;
  size_t total = 1;
  for (const Axis& a : spec.axes) {
    HSSTA_REQUIRE(!a.values.empty() && total <= kMaxScenarios / a.values.size(),
                  "campaign spec: grid is unreasonably large (over " +
                      std::to_string(kMaxScenarios) + " scenarios)");
    total *= a.values.size();
  }

  std::vector<CampaignScenario> out;
  out.reserve(total);
  std::vector<size_t> odo(spec.axes.size(), 0);
  std::set<std::string> seen;
  for (size_t i = 0; i < total; ++i) {
    CampaignScenario sc;
    sc.index = i;
    for (size_t a = 0; a < spec.axes.size(); ++a) {
      const AxisValue& v = spec.axes[a].values[odo[a]];
      sc.label += (sc.label.empty() ? "" : "|") + v.label;
      sc.changes.push_back(v.change);
    }
    if (!seen.insert(change_list_key(sc.changes)).second)
      throw Error("campaign spec: duplicate scenario '" + sc.label +
                  "' — two grid points expand to the same change list");
    out.push_back(std::move(sc));
    // Odometer: last axis fastest.
    for (size_t a = spec.axes.size(); a-- > 0;) {
      if (++odo[a] < spec.axes[a].values.size()) break;
      odo[a] = 0;
    }
  }
  return out;
}

flow::Design build_base_design(const CampaignSpec& spec,
                               const flow::Config& cfg) {
  if (spec.topology == "star")
    return flow::build_star_design(spec.name, spec.files, cfg);
  return flow::build_chain_design(spec.name, spec.files, cfg);
}

}  // namespace hssta::campaign
