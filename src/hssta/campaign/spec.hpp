/// \file spec.hpp
/// campaign::CampaignSpec — the declarative description of a scenario-
/// exploration campaign, and its deterministic expansion.
///
/// A campaign file is JSON (parsed by the strict util::JsonReader):
///
///   {
///     "name": "c1908_corners",
///     "description": "sigma corners x hub variants",   // optional
///     "base": {"topology": "chain"|"star",
///              "files": ["m0.bench", "m1.hstm", ...]},
///     "axes": [
///       {"type": "sigma",  "param": 0, "scales": [0.8, 1.0, 1.2]},
///       {"type": "swap",   "inst": 2,  "files": ["v1.hstm", "v2.hstm"]},
///       {"type": "move",   "inst": 1,  "points": [[0.0, 0.0], [3.0, 1.5]]},
///       {"type": "rewire", "conn": 0,
///        "routes": [{"from_inst":0,"from_port":1,"to_inst":1,"to_port":0}]}
///     ]
///   }
///
/// Every object accepts an optional "description"/"notes" member; any
/// other unknown key is rejected (a typo must not silently shrink a
/// campaign). Relative paths resolve against the spec file's directory.
///
/// expand() takes the cross product of the axes — the last axis varies
/// fastest, so scenario order is the natural odometer order — and labels
/// each scenario with the "|"-joined per-axis value labels. The scenario
/// list is a pure function of the spec: every coordinator, worker and
/// resumed run derives the identical (index, label, changes) sequence.

#pragma once

#include <string>
#include <vector>

#include "hssta/flow/chain.hpp"
#include "hssta/flow/config.hpp"
#include "hssta/serve/protocol.hpp"
#include "hssta/util/json.hpp"

namespace hssta::campaign {

/// One point on one axis: the wire-schema change it applies plus the
/// short label it contributes to scenario labels ("p0x1.2", "u2=v1.hstm").
struct AxisValue {
  std::string label;
  serve::ChangeSpec change;
};

struct Axis {
  std::vector<AxisValue> values;
};

struct CampaignSpec {
  std::string name;
  std::string topology;  ///< "chain" or "star"
  std::vector<std::string> files;  ///< base module files (resolved paths)
  std::vector<Axis> axes;
};

/// One expanded grid point. `index` is the scenario's position in the
/// deterministic expansion order — the merge report is keyed by it; the
/// work queue is keyed by the scenario fingerprint computed downstream
/// (content identity, not position).
struct CampaignScenario {
  size_t index = 0;
  std::string label;
  std::vector<serve::ChangeSpec> changes;
};

/// Parse a campaign document. `base_dir` anchors relative file paths
/// (labels keep the spec's unresolved strings). Throws hssta::Error on
/// malformed input, unknown keys, or empty grids.
[[nodiscard]] CampaignSpec parse_campaign(const util::JsonValue& doc,
                                          const std::string& base_dir);
[[nodiscard]] CampaignSpec parse_campaign_file(const std::string& path);

/// Cross product of the axes, odometer order (last axis fastest).
/// Throws when two expanded scenarios carry identical change lists — the
/// on-disk queue is keyed by content fingerprint, so duplicates would
/// silently collapse into one shard.
[[nodiscard]] std::vector<CampaignScenario> expand(const CampaignSpec& spec);

/// Assemble the spec's base design (chain or star) through the shared
/// flow builders — the same code a served or one-shot CLI analysis uses,
/// so campaign results are bit-comparable with both.
[[nodiscard]] flow::Design build_base_design(const CampaignSpec& spec,
                                             const flow::Config& cfg);

}  // namespace hssta::campaign
