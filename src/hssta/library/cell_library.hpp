/// \file cell_library.hpp
/// Container of cell types with stable addresses (netlists hold CellType
/// pointers), plus the synthetic 90nm library used throughout the
/// reproduction (see DESIGN.md "Substitutions").

#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "hssta/library/cell.hpp"

namespace hssta::library {

class CellLibrary {
 public:
  CellLibrary() = default;
  CellLibrary(CellLibrary&&) = default;
  CellLibrary& operator=(CellLibrary&&) = default;
  // Netlists alias CellType addresses; copying a library would silently
  // detach them, so copies are disabled.
  CellLibrary(const CellLibrary&) = delete;
  CellLibrary& operator=(const CellLibrary&) = delete;

  /// Add a cell; throws on duplicate name. Returns the stored cell.
  const CellType& add(CellType cell);

  /// Lookup by name; throws hssta::Error if absent.
  [[nodiscard]] const CellType& get(const std::string& name) const;

  /// Lookup by name; nullptr if absent.
  [[nodiscard]] const CellType* find(const std::string& name) const;

  /// Find the widest cell of a function with num_inputs <= max_inputs;
  /// nullptr if none exists. Used by the .bench reader to decompose
  /// wide gates into library-sized trees.
  [[nodiscard]] const CellType* find_widest(GateFunc func,
                                            size_t max_inputs) const;

  [[nodiscard]] size_t size() const { return cells_.size(); }

  [[nodiscard]] std::vector<const CellType*> all() const;

 private:
  std::vector<std::unique_ptr<CellType>> cells_;
  // det-ok: name lookup only; enumeration goes through cells_ (insertion
  // order), never through this index.
  std::unordered_map<std::string, size_t> index_;
};

/// The synthetic 90nm-flavoured library: INV/BUF, NAND/NOR/AND/OR in widths
/// 2-4, XOR2/XNOR2. Delay sensitivities reference the parameter names of
/// variation::default_90nm_parameters(): "Leff", "Tox", "Vth".
[[nodiscard]] CellLibrary default_90nm();

/// Stable 64-bit content fingerprint of a library: every cell's name,
/// function, arity, timing/electrical parameters and sensitivities, in
/// registration order. The library half of the model cache key — a changed
/// cell delay must invalidate every cached model extracted against it.
[[nodiscard]] uint64_t fingerprint(const CellLibrary& lib);

}  // namespace hssta::library
