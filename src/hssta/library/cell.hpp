/// \file cell.hpp
/// Cell types of the standard-cell library: logic function (for functional
/// verification of generated circuits), pin-to-pin nominal timing, electrical
/// data (drive resistance, pin capacitance) and relative delay sensitivities
/// to the process parameters of Section VI of the paper.

#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace hssta::library {

/// Boolean function computed by a cell (n-ary where applicable).
enum class GateFunc { kBuf, kNot, kAnd, kNand, kOr, kNor, kXor, kXnor };

/// Evaluate `func` on `inputs` (XOR/XNOR are parity functions for n > 2).
/// Throws hssta::Error if `inputs` is empty or arity is invalid for the
/// function (kBuf/kNot need exactly one input).
[[nodiscard]] bool eval_gate(GateFunc func, std::span<const bool> inputs);

/// Printable name of a gate function ("NAND", "NOT", ...).
[[nodiscard]] const char* gate_func_name(GateFunc func);

/// Relative delay sensitivity to one process parameter:
///   Δd/d0 = value * (Δp/p0).
/// The parameter is referenced by name so the library stays decoupled from
/// the variation model; the timing-graph builder joins them by name.
struct Sensitivity {
  std::string parameter;
  double value = 0.0;
};

/// One library cell. The pin-to-output delay through input pin i is
///   d_i = intrinsic[i] + drive_res * C_load
/// with C_load the sum of the fanout pin capacitances.
struct CellType {
  std::string name;                  ///< e.g. "NAND2"
  GateFunc func = GateFunc::kBuf;
  size_t num_inputs = 1;
  std::vector<double> intrinsic;     ///< ns, one entry per input pin
  double drive_res = 0.0;            ///< ns per fF
  double input_cap = 0.0;            ///< fF, per input pin
  double width = 1.0;                ///< um, for row placement
  std::vector<Sensitivity> sensitivities;

  /// Nominal pin-to-output delay for input pin `pin` at load `c_load` fF.
  [[nodiscard]] double pin_delay(size_t pin, double c_load) const;

  /// Sensitivity value for a parameter name; 0 if the cell has none.
  [[nodiscard]] double sensitivity(const std::string& parameter) const;
};

}  // namespace hssta::library
