#include "hssta/library/cell.hpp"

#include "hssta/util/error.hpp"

namespace hssta::library {

bool eval_gate(GateFunc func, std::span<const bool> inputs) {
  HSSTA_REQUIRE(!inputs.empty(), "gate evaluation needs at least one input");
  switch (func) {
    case GateFunc::kBuf:
      HSSTA_REQUIRE(inputs.size() == 1, "BUF takes exactly one input");
      return inputs[0];
    case GateFunc::kNot:
      HSSTA_REQUIRE(inputs.size() == 1, "NOT takes exactly one input");
      return !inputs[0];
    case GateFunc::kAnd:
    case GateFunc::kNand: {
      bool all = true;
      for (bool b : inputs) all = all && b;
      return func == GateFunc::kAnd ? all : !all;
    }
    case GateFunc::kOr:
    case GateFunc::kNor: {
      bool any = false;
      for (bool b : inputs) any = any || b;
      return func == GateFunc::kOr ? any : !any;
    }
    case GateFunc::kXor:
    case GateFunc::kXnor: {
      bool parity = false;
      for (bool b : inputs) parity = parity != b;
      return func == GateFunc::kXor ? parity : !parity;
    }
  }
  throw Error("unknown gate function");
}

const char* gate_func_name(GateFunc func) {
  switch (func) {
    case GateFunc::kBuf: return "BUF";
    case GateFunc::kNot: return "NOT";
    case GateFunc::kAnd: return "AND";
    case GateFunc::kNand: return "NAND";
    case GateFunc::kOr: return "OR";
    case GateFunc::kNor: return "NOR";
    case GateFunc::kXor: return "XOR";
    case GateFunc::kXnor: return "XNOR";
  }
  return "?";
}

double CellType::pin_delay(size_t pin, double c_load) const {
  HSSTA_REQUIRE(pin < intrinsic.size(), "pin index out of range");
  return intrinsic[pin] + drive_res * c_load;
}

double CellType::sensitivity(const std::string& parameter) const {
  for (const auto& s : sensitivities)
    if (s.parameter == parameter) return s.value;
  return 0.0;
}

}  // namespace hssta::library
