#include "hssta/library/cell_library.hpp"

#include "hssta/util/error.hpp"
#include "hssta/util/hash.hpp"

namespace hssta::library {

const CellType& CellLibrary::add(CellType cell) {
  HSSTA_REQUIRE(!cell.name.empty(), "cell needs a name");
  HSSTA_REQUIRE(index_.find(cell.name) == index_.end(),
                "duplicate cell name: " + cell.name);
  HSSTA_REQUIRE(cell.intrinsic.size() == cell.num_inputs,
                "cell needs one intrinsic delay per input pin");
  index_[cell.name] = cells_.size();
  cells_.push_back(std::make_unique<CellType>(std::move(cell)));
  return *cells_.back();
}

const CellType& CellLibrary::get(const std::string& name) const {
  const CellType* c = find(name);
  if (!c) throw Error("cell not in library: " + name);
  return *c;
}

const CellType* CellLibrary::find(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : cells_[it->second].get();
}

const CellType* CellLibrary::find_widest(GateFunc func,
                                         size_t max_inputs) const {
  const CellType* best = nullptr;
  for (const auto& c : cells_) {
    if (c->func != func || c->num_inputs > max_inputs) continue;
    if (!best || c->num_inputs > best->num_inputs) best = c.get();
  }
  return best;
}

std::vector<const CellType*> CellLibrary::all() const {
  std::vector<const CellType*> out;
  out.reserve(cells_.size());
  for (const auto& c : cells_) out.push_back(c.get());
  return out;
}

namespace {

/// Later pins of a stack are marginally slower; mirrors real libraries and
/// gives per-pin delay diversity so parallel merges are non-trivial.
std::vector<double> per_pin(double base, size_t pins) {
  std::vector<double> d(pins);
  for (size_t i = 0; i < pins; ++i)
    d[i] = base * (1.0 + 0.06 * static_cast<double>(i));
  return d;
}

CellType make(const char* name, GateFunc func, size_t pins, double intrinsic,
              double drive_res, double cap, double width, double s_leff,
              double s_tox, double s_vth) {
  CellType c;
  c.name = name;
  c.func = func;
  c.num_inputs = pins;
  c.intrinsic = per_pin(intrinsic, pins);
  c.drive_res = drive_res;
  c.input_cap = cap;
  c.width = width;
  c.sensitivities = {{"Leff", s_leff}, {"Tox", s_tox}, {"Vth", s_vth}};
  return c;
}

}  // namespace

CellLibrary default_90nm() {
  // Units: ns, fF, um. Values are representative of a 90nm standard-cell
  // library (see DESIGN.md): FO4-ish delays in the tens of picoseconds,
  // input caps of a couple of fF. Sensitivities are relative:
  // Δd/d0 per Δp/p0, strongest for channel length, weaker for Tox/Vth.
  CellLibrary lib;
  using GF = GateFunc;
  lib.add(make("INV", GF::kNot, 1, 0.012, 0.0035, 1.8, 0.8, 0.90, 0.35, 0.45));
  lib.add(make("BUF", GF::kBuf, 1, 0.026, 0.0032, 1.8, 1.2, 0.85, 0.33, 0.42));
  lib.add(make("NAND2", GF::kNand, 2, 0.017, 0.0040, 2.0, 1.2, 0.95, 0.36, 0.50));
  lib.add(make("NAND3", GF::kNand, 3, 0.024, 0.0046, 2.2, 1.6, 0.97, 0.37, 0.52));
  lib.add(make("NAND4", GF::kNand, 4, 0.031, 0.0053, 2.4, 2.0, 0.99, 0.38, 0.54));
  lib.add(make("NOR2", GF::kNor, 2, 0.020, 0.0045, 2.1, 1.2, 1.00, 0.38, 0.55));
  lib.add(make("NOR3", GF::kNor, 3, 0.029, 0.0054, 2.3, 1.6, 1.02, 0.39, 0.57));
  lib.add(make("NOR4", GF::kNor, 4, 0.038, 0.0064, 2.5, 2.0, 1.04, 0.40, 0.59));
  lib.add(make("AND2", GF::kAnd, 2, 0.029, 0.0037, 2.0, 1.6, 0.92, 0.35, 0.48));
  lib.add(make("AND3", GF::kAnd, 3, 0.036, 0.0042, 2.2, 2.0, 0.94, 0.36, 0.50));
  lib.add(make("AND4", GF::kAnd, 4, 0.043, 0.0048, 2.4, 2.4, 0.96, 0.37, 0.52));
  lib.add(make("OR2", GF::kOr, 2, 0.032, 0.0039, 2.1, 1.6, 0.93, 0.36, 0.49));
  lib.add(make("OR3", GF::kOr, 3, 0.040, 0.0045, 2.3, 2.0, 0.95, 0.37, 0.51));
  lib.add(make("OR4", GF::kOr, 4, 0.048, 0.0051, 2.5, 2.4, 0.97, 0.38, 0.53));
  lib.add(make("XOR2", GF::kXor, 2, 0.045, 0.0042, 2.6, 2.4, 0.98, 0.40, 0.58));
  lib.add(make("XNOR2", GF::kXnor, 2, 0.047, 0.0042, 2.6, 2.4, 0.98, 0.40, 0.58));
  return lib;
}

// Tripwire (see flow/config.cpp): a new CellType/Sensitivity field must be
// added to the hash below and the version tag bumped.
#if defined(__GLIBCXX__) && defined(__x86_64__)
static_assert(sizeof(CellType) == 120 && sizeof(Sensitivity) == 40,
              "CellType changed: update fingerprint() and its tag");
#endif

uint64_t fingerprint(const CellLibrary& lib) {
  util::Fnv1a h;
  h.str("hssta.library.v1");
  h.u64(lib.size());
  for (const CellType* c : lib.all()) {
    h.str(c->name);
    h.u64(static_cast<uint64_t>(c->func));
    h.u64(c->num_inputs);
    h.u64(c->intrinsic.size());
    for (double d : c->intrinsic) h.f64(d);
    h.f64(c->drive_res);
    h.f64(c->input_cap);
    h.f64(c->width);
    h.u64(c->sensitivities.size());
    for (const Sensitivity& s : c->sensitivities) {
      h.str(s.parameter);
      h.f64(s.value);
    }
  }
  return h.value();
}

}  // namespace hssta::library
