#include "hssta/incr/design_state.hpp"

#include <algorithm>
#include <utility>

#include "hssta/timing/statops.hpp"
#include "hssta/util/error.hpp"
#include "hssta/util/timer.hpp"

namespace hssta::incr {

using timing::CanonicalForm;
using timing::EdgeId;
using timing::TimingGraph;
using timing::VertexId;

namespace {

/// Scratch of the cone sweep (one per worker slot): the fold candidate and
/// the recomputed arrival, recycled across vertices so a sweep allocates
/// nothing after warm-up.
struct ConeScratch {
  CanonicalForm candidate;
  CanonicalForm result;
};

/// Can `next` replace `prev` for instance `t` without invalidating the
/// stitched coefficient layout? Requires an identical footprint: same die,
/// same characterization grid partition, bitwise-identical parameters and
/// correlation profile (the design space is built from these; any drift
/// would change its PCA), and in global-only mode the same spatial
/// component count (the private slot ranges of *later* instances shift
/// otherwise).
bool geometry_compatible(const model::TimingModel& prev,
                         const model::TimingModel& next,
                         hier::CorrelationMode mode) {
  const placement::Die& da = prev.die();
  const placement::Die& db = next.die();
  if (da.width != db.width || da.height != db.height) return false;

  const variation::GridPartition& pa = prev.variation().partition;
  const variation::GridPartition& pb = next.variation().partition;
  if (pa.nx() != pb.nx() || pa.ny() != pb.ny()) return false;

  const variation::VariationSpace& sa = *prev.variation().space;
  const variation::VariationSpace& sb = *next.variation().space;
  const variation::ParameterSet& qa = sa.parameters();
  const variation::ParameterSet& qb = sb.parameters();
  if (qa.size() != qb.size() || qa.load_sigma_rel != qb.load_sigma_rel)
    return false;
  for (size_t p = 0; p < qa.size(); ++p) {
    const variation::ProcessParameter& a = qa.at(p);
    const variation::ProcessParameter& b = qb.at(p);
    if (a.name != b.name || a.sigma_rel != b.sigma_rel ||
        a.global_frac != b.global_frac || a.local_frac != b.local_frac ||
        a.random_frac != b.random_frac)
      return false;
  }
  const variation::SpatialCorrelationConfig& ca =
      sa.correlation_model().config();
  const variation::SpatialCorrelationConfig& cb =
      sb.correlation_model().config();
  if (ca.rho_neighbor != cb.rho_neighbor || ca.rho_global != cb.rho_global ||
      ca.cutoff != cb.cutoff)
    return false;

  if (mode == hier::CorrelationMode::kGlobalOnly &&
      sa.num_components() != sb.num_components())
    return false;
  return true;
}

}  // namespace

DesignState::DesignState(DesignInputs inputs, hier::HierOptions opts,
                         std::shared_ptr<exec::Executor> ex,
                         timing::LevelParallel mode)
    : inputs_(std::move(inputs)),
      opts_(std::move(opts)),
      exec_(ex ? std::move(ex) : std::make_shared<exec::SerialExecutor>()),
      mode_(mode) {
  HSSTA_REQUIRE(!inputs_.instances.empty(),
                "incremental design '" + inputs_.name + "' has no instances");
  for (const InstanceSpec& inst : inputs_.instances)
    HSSTA_REQUIRE(inst.model != nullptr,
                  "instance '" + inst.name + "' has no timing model");
  inst_dirty_.assign(inputs_.instances.size(), 0);
  conn_dirty_.assign(inputs_.connections.size(), 0);
}

void DesignState::set_executor(std::shared_ptr<exec::Executor> ex) {
  HSSTA_REQUIRE(ex != nullptr, "set_executor: null executor");
  exec_ = std::move(ex);
}

size_t DesignState::num_params() const {
  return inputs_.instances.front().model->variation().space->num_params();
}

hier::HierDesign DesignState::make_view() const {
  placement::Die die;
  if (inputs_.fixed_die) {
    die = *inputs_.fixed_die;
  } else {
    double w = 0.0, h = 0.0;
    for (const InstanceSpec& inst : inputs_.instances) {
      const placement::Die& mdie = inst.model->die();
      w = std::max(w, inst.origin.x + mdie.width);
      h = std::max(h, inst.origin.y + mdie.height);
    }
    die = placement::Die{w, h};
  }
  hier::HierDesign d(inputs_.name, die);
  for (const InstanceSpec& inst : inputs_.instances)
    d.add_instance(hier::ModuleInstance{inst.name, inst.model.get(),
                                        inst.origin, nullptr, nullptr});
  for (const hier::Connection& c : inputs_.connections) d.add_connection(c);
  for (const hier::PrimaryInput& pi : inputs_.primary_inputs)
    d.add_primary_input(pi);
  for (const hier::PrimaryOutput& po : inputs_.primary_outputs)
    d.add_primary_output(po);
  return d;
}

// --- change API -------------------------------------------------------------

void DesignState::replace_module(
    size_t inst, std::shared_ptr<const model::TimingModel> model) {
  HSSTA_REQUIRE(inst < inputs_.instances.size(),
                "replace_module: instance index out of range");
  HSSTA_REQUIRE(model != nullptr, "replace_module: null model");
  const bool compatible = geometry_compatible(*inputs_.instances[inst].model,
                                              *model, opts_.mode);
  inputs_.instances[inst].model = std::move(model);
  if (compatible)
    inst_dirty_[inst] = 1;
  else
    full_rebuild_ = true;
}

void DesignState::move_instance(size_t inst, double x, double y) {
  HSSTA_REQUIRE(inst < inputs_.instances.size(),
                "move_instance: instance index out of range");
  placement::Point& origin = inputs_.instances[inst].origin;
  if (origin.x == x && origin.y == y) return;
  origin = placement::Point{x, y};
  if (opts_.mode == hier::CorrelationMode::kReplacement)
    space_dirty_ = true;  // grid centers moved: the design PCA changes
  else
    revalidate_ = true;  // private spatial blocks ignore the origin
}

void DesignState::rewire_connection(size_t conn, hier::PortRef from_output,
                                    hier::PortRef to_input) {
  HSSTA_REQUIRE(conn < inputs_.connections.size(),
                "rewire_connection: connection index out of range");
  hier::Connection& c = inputs_.connections[conn];
  if (c.from_output == from_output && c.to_input == to_input) return;
  // Remember the currently *stitched* target once per flush: if the old
  // boundary edge dies with a restitched instance before
  // restitch_connection runs, this is the vertex that silently lost its
  // driver and must still re-propagate.
  if (!conn_dirty_[conn]) rewire_old_targets_[conn] = c.to_input;
  c = hier::Connection{from_output, to_input};
  conn_dirty_[conn] = 1;
}

void DesignState::set_parameter_sigma(size_t param, double scale) {
  HSSTA_REQUIRE(param < num_params(),
                "set_parameter_sigma: parameter index out of range");
  HSSTA_REQUIRE(scale >= 0.0, "set_parameter_sigma: negative scale");
  std::vector<double>& s = opts_.param_sigma_scale;
  if (s.empty()) s.assign(num_params(), 1.0);
  if (s[param] == scale) return;
  s[param] = scale;
  coeffs_dirty_ = true;
}

bool DesignState::pending() const {
  return full_rebuild_ || space_dirty_ || coeffs_dirty_ || revalidate_ ||
         std::find(inst_dirty_.begin(), inst_dirty_.end(), 1) !=
             inst_dirty_.end() ||
         std::find(conn_dirty_.begin(), conn_dirty_.end(), 1) !=
             conn_dirty_.end();
}

void DesignState::clear_pending() {
  full_rebuild_ = false;
  space_dirty_ = false;
  coeffs_dirty_ = false;
  revalidate_ = false;
  inst_dirty_.assign(inputs_.instances.size(), 0);
  conn_dirty_.assign(inputs_.connections.size(), 0);
  rewire_old_targets_.clear();
}

// --- derived-state maintenance ----------------------------------------------

void DesignState::recompute_sigma_multipliers() {
  std::vector<size_t> slots(inputs_.instances.size(), 0);
  std::vector<size_t> components(inputs_.instances.size(), 0);
  for (size_t t = 0; t < inputs_.instances.size(); ++t) {
    slots[t] = st_->instances[t].private_slot;
    components[t] =
        inputs_.instances[t].model->variation().space->num_components();
  }
  sigma_mult_ = hier::sigma_multipliers(opts_, st_->total_dim, num_params(),
                                        st_->design_space.get(), slots,
                                        components);
}

void DesignState::full_build(const hier::HierDesign& view) {
  st_ = hier::stitch_design(view, opts_);
  recompute_sigma_multipliers();
  ++stats_.full_builds;
}

void DesignState::refresh_design_space(const hier::HierDesign& view) {
  hier::DesignGrid grid = hier::build_design_grid(view);
  std::shared_ptr<const variation::VariationSpace> space =
      hier::build_design_space(view, grid, opts_.pca);
  if (space->dim() != st_->total_dim) {
    // The PCA truncation shifted with the new geometry: every canonical
    // form changes width, so the graph must be rebuilt from scratch.
    full_rebuild_ = true;
    return;
  }
  st_->grid = std::move(grid);
  st_->design_space = std::move(space);
  st_->graph.reset_space(st_->design_space);
}

void DesignState::refresh_coefficients(const hier::HierDesign& view) {
  TimingGraph& g = st_->graph;
  const bool replacement = opts_.mode == hier::CorrelationMode::kReplacement;
  recompute_sigma_multipliers();

  for (size_t t = 0; t < inputs_.instances.size(); ++t) {
    hier::InstanceStitch& st = st_->instances[t];
    const model::TimingModel& m = *inputs_.instances[t].model;
    const variation::VariationSpace& mspace = *m.variation().space;
    const hier::InstanceRemapper remap =
        replacement
            ? (space_dirty_
                   ? hier::InstanceRemapper::replacement(
                         mspace, *st_->design_space,
                         st_->grid.instance_grids[t])
                   : hier::InstanceRemapper::replacement_with(
                         mspace, *st_->design_space, st.r))
            : hier::InstanceRemapper::global_only(mspace, st_->total_dim,
                                                  num_params(),
                                                  st.private_slot);
    if (replacement && space_dirty_) st.r = remap.r();
    const TimingGraph& mg = m.graph();
    for (EdgeId e = 0; e < mg.num_edge_slots(); ++e) {
      if (!mg.edge_alive(e)) continue;
      CanonicalForm d = remap(mg.edge(e).delay);
      hier::apply_sigma_scale(sigma_mult_, d);
      g.edge(st.edge_map[e]).delay = std::move(d);
    }
  }
  ++stats_.coefficient_refreshes;
}

void DesignState::restitch_instance(const hier::HierDesign& view, size_t t,
                                    std::vector<VertexId>& seeds) {
  TimingGraph& g = st_->graph;
  hier::InstanceStitch& st = st_->instances[t];

  // Drop the old subgraph, taking every boundary edge touching it along.
  for (VertexId v : st.vertex_map) {
    if (v == timing::kNoVertex || !g.vertex_alive(v)) continue;
    while (!g.vertex(v).fanin.empty()) g.remove_edge(g.vertex(v).fanin.back());
    while (!g.vertex(v).fanout.empty())
      g.remove_edge(g.vertex(v).fanout.back());
    g.remove_vertex(v);
  }

  // Stitch the (possibly new) model in — the same helper, remapper and
  // sigma scaling the from-scratch stitch uses, so every edge delay comes
  // out bit-identical.
  const hier::ModuleInstance& inst = view.instances()[t];
  const variation::VariationSpace& mspace = *inst.model->variation().space;
  const hier::InstanceRemapper remap =
      opts_.mode == hier::CorrelationMode::kReplacement
          ? hier::InstanceRemapper::replacement(mspace, *st_->design_space,
                                                st_->grid.instance_grids[t])
          : hier::InstanceRemapper::global_only(mspace, st_->total_dim,
                                                num_params(),
                                                st.private_slot);
  st.r = remap.r();
  hier::stitch_instance_subgraph(g, inst, remap, sigma_mult_, st);
  for (VertexId v : st.vertex_map)
    if (v != timing::kNoVertex) seeds.push_back(v);

  // Reconnect the boundary: connections, primary inputs and outputs that
  // touch the instance (their old edges died with the subgraph). Pending
  // rewires are left to restitch_connection, which still holds the OLD
  // edge id — re-adding such a connection here (by its already-updated
  // endpoints) would orphan an old edge whose endpoints touch neither
  // restitched instance, silently corrupting the graph.
  for (size_t c = 0; c < inputs_.connections.size(); ++c) {
    if (conn_dirty_[c]) continue;
    const hier::Connection& cn = inputs_.connections[c];
    if (cn.from_output.instance != t && cn.to_input.instance != t) continue;
    const EdgeId e =
        g.add_edge(st_->output_vertex(view, cn.from_output),
                   st_->input_vertex(view, cn.to_input),
                   hier::connection_delay(view, opts_, cn, st_->total_dim));
    st_->connection_edges[c] = e;
    seeds.push_back(g.edge(e).to);
  }
  for (size_t i = 0; i < inputs_.primary_inputs.size(); ++i) {
    const hier::PrimaryInput& pi = inputs_.primary_inputs[i];
    for (size_t s = 0; s < pi.sinks.size(); ++s) {
      if (pi.sinks[s].instance != t) continue;
      st_->pi_edges[i][s] =
          g.add_edge(st_->pi_vertices[i], st_->input_vertex(view, pi.sinks[s]),
                     CanonicalForm(st_->total_dim));
    }
  }
  for (size_t p = 0; p < inputs_.primary_outputs.size(); ++p) {
    const hier::PrimaryOutput& po = inputs_.primary_outputs[p];
    if (po.source.instance != t) continue;
    st_->po_edges[p] =
        g.add_edge(st_->output_vertex(view, po.source), st_->po_vertices[p],
                   CanonicalForm(st_->total_dim));
    seeds.push_back(st_->po_vertices[p]);
  }
  ++stats_.instances_restitched;
}

void DesignState::restitch_connection(const hier::HierDesign& view, size_t c,
                                      std::vector<VertexId>& seeds) {
  TimingGraph& g = st_->graph;
  const EdgeId old = st_->connection_edges[c];
  if (old != timing::kNoEdge && g.edge_alive(old)) {
    seeds.push_back(g.edge(old).to);  // the abandoned target loses a driver
    g.remove_edge(old);
  } else if (const auto it = rewire_old_targets_.find(c);
             it != rewire_old_targets_.end()) {
    // The old edge died with a restitched instance's subgraph. The
    // abandoned target still lost its driver; resolve it through the
    // *current* maps (a restitched target maps to its fresh vertex, which
    // is already seeded — a harmless duplicate). Guard the port range: a
    // swapped-in model may have fewer inputs than the stitched one had.
    const hier::PortRef& r = it->second;
    const timing::TimingGraph& mg = view.instances()[r.instance].model->graph();
    if (r.port < mg.inputs().size()) {
      const VertexId v = st_->input_vertex(view, r);
      if (v != timing::kNoVertex && g.vertex_alive(v)) seeds.push_back(v);
    }
  }
  const hier::Connection& cn = inputs_.connections[c];
  const EdgeId e =
      g.add_edge(st_->output_vertex(view, cn.from_output),
                 st_->input_vertex(view, cn.to_input),
                 hier::connection_delay(view, opts_, cn, st_->total_dim));
  st_->connection_edges[c] = e;
  seeds.push_back(g.edge(e).to);
  ++stats_.connections_restitched;
}

// --- propagation ------------------------------------------------------------

void DesignState::propagate_full() {
  timing::propagate_arrivals_into(st_->graph, {}, arrivals_, *exec_, mode_);
  stats_.vertices_recomputed = st_->graph.num_live_vertices();
}

void DesignState::propagate_cone(const std::vector<VertexId>& seeds) {
  TimingGraph& g = st_->graph;
  const size_t slots = g.num_vertex_slots();
  const CanonicalForm zero(st_->total_dim);
  // Grow the arrival bank for freshly stitched vertex slots (new rows are
  // zero forms); stale entries of dead slots are never read.
  if (arrivals_.time.dim() != st_->total_dim)
    arrivals_.time.reset(slots, st_->total_dim);
  else
    arrivals_.time.resize_rows(slots);
  arrivals_.valid.resize(slots, 0);
  arrivals_.diagnostics = timing::MaxDiagnostics{};

  std::vector<uint8_t> dirty(slots, 0);
  for (VertexId v : seeds)
    if (g.vertex_alive(v) && !g.vertex(v).is_input) dirty[v] = 1;

  const std::shared_ptr<const timing::LevelStructure> ls = g.levels();
  exec::Executor& ex = *exec_;
  const exec::Executor::Exclusive scope(ex);
  std::vector<uint8_t> changed(slots, 0);
  std::vector<VertexId> work;
  size_t recomputed = 0;

  for (size_t l = 0; l < ls->num_levels(); ++l) {
    work.clear();
    for (VertexId v : ls->bucket(l))
      if (dirty[v]) work.push_back(v);
    if (work.empty()) continue;
    recomputed += work.size();

    // Recompute each dirty vertex's arrival from its (stable, lower-level)
    // fanins with exactly the fold of timing::relax_fanin; each task
    // writes only its own slot, so a level fans out race-free.
    exec::run_maybe_parallel(
        ex, work.size(), timing::kMinLevelFanOut,
        [&](size_t k, exec::Workspace& ws) {
          const VertexId v = work[k];
          ConeScratch& sc = ws.get<ConeScratch>();
          CanonicalForm& nt = sc.result;
          nt = zero;
          if (sc.candidate.dim() != zero.dim()) sc.candidate = zero;
          const timing::FormView cand = sc.candidate.view();
          bool has = false;  // dirty vertices are never sources
          for (EdgeId e : g.vertex(v).fanin) {
            const timing::TimingEdge& te = g.edge(e);
            if (!arrivals_.valid[te.from]) continue;
            timing::add_into(cand, arrivals_.time.row(te.from),
                             te.delay.view());
            if (!has) {
              timing::form_copy(nt.view(), cand);
              has = true;
            } else {
              timing::statistical_max_into(nt.view(), nt.view(), cand);
            }
          }
          const uint8_t nv = has ? 1 : 0;
          changed[v] =
              nv != arrivals_.valid[v] ||
              (nv != 0 &&
               !timing::form_equal(nt.view(), arrivals_.time.row(v)));
          arrivals_.time.store(v, nt);
          arrivals_.valid[v] = nv;
        });

    // A bit-identical recomputation stops the cone; only genuinely changed
    // vertices dirty their (strictly higher-level) fanouts.
    for (VertexId v : work) {
      if (!changed[v]) continue;
      for (EdgeId e : g.vertex(v).fanout) dirty[g.edge(e).to] = 1;
    }
  }
  stats_.vertices_recomputed = recomputed;
}

// --- analyze ----------------------------------------------------------------

const CanonicalForm& DesignState::analyze() {
  if (!pending()) return delay_;
  WallTimer timer;
  ++stats_.analyses;
  stats_.vertices_recomputed = 0;

  const hier::HierDesign view = make_view();
  // Validate up front so an invalid change (out-of-range port, input driven
  // twice, instance off-die) throws the same error a from-scratch build
  // would — before any derived state is touched.
  view.validate();

  try {
    if (!full_rebuild_ && space_dirty_) {
      refresh_design_space(view);  // may demand a full rebuild (dim change)
      if (!full_rebuild_) coeffs_dirty_ = true;
    }
    if (full_rebuild_) {
      full_build(view);
      propagate_full();
    } else {
      std::vector<VertexId> seeds;
      for (size_t t = 0; t < inst_dirty_.size(); ++t)
        if (inst_dirty_[t]) restitch_instance(view, t, seeds);
      for (size_t c = 0; c < conn_dirty_.size(); ++c)
        if (conn_dirty_[c]) restitch_connection(view, c, seeds);
      if (coeffs_dirty_) {
        refresh_coefficients(view);
        propagate_full();
      } else if (!seeds.empty()) {
        propagate_cone(seeds);
      }
      if (revalidate_) {
        // A global-only move: the analysis is origin-independent, but keep
        // the introspection grid in sync with the new placement (whatever
        // else this flush carried).
        st_->grid = hier::build_design_grid(view);
      }
    }
    delay_ = timing::circuit_delay(st_->graph, arrivals_, nullptr);
  } catch (...) {
    // Derived state may be half-updated (e.g. an output became
    // unreachable mid-restitch); recover from scratch next time.
    full_rebuild_ = true;
    throw;
  }

  clear_pending();
  stats_.vertices_live = st_->graph.num_live_vertices();
  stats_.last_seconds = timer.seconds();
  return delay_;
}

// --- views ------------------------------------------------------------------

const CanonicalForm& DesignState::delay() const {
  HSSTA_REQUIRE(st_.has_value(), "design not analyzed yet");
  return delay_;
}

const TimingGraph& DesignState::graph() const {
  HSSTA_REQUIRE(st_.has_value(), "design not analyzed yet");
  return st_->graph;
}

const timing::PropagationResult& DesignState::arrivals() const {
  HSSTA_REQUIRE(st_.has_value(), "design not analyzed yet");
  return arrivals_;
}

std::optional<CanonicalForm> DesignState::arrival(
    const std::string& name) const {
  HSSTA_REQUIRE(st_.has_value(), "design not analyzed yet");
  const VertexId v = st_->graph.find_vertex(name);
  if (v == timing::kNoVertex || v >= arrivals_.valid.size() ||
      !arrivals_.valid[v])
    return std::nullopt;
  return arrivals_.time.form(v);
}

std::shared_ptr<const variation::VariationSpace> DesignState::design_space()
    const {
  HSSTA_REQUIRE(st_.has_value(), "design not analyzed yet");
  return st_->design_space;
}

const hier::DesignGrid& DesignState::grid() const {
  HSSTA_REQUIRE(st_.has_value(), "design not analyzed yet");
  return st_->grid;
}

}  // namespace hssta::incr
