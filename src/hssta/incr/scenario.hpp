/// \file scenario.hpp
/// incr::ScenarioRunner — batched what-if sweeps over one analyzed design.
///
/// A Scenario is a labelled list of changes (module-variant swaps,
/// placement perturbations, connection rewires, corner-like sigma
/// scalings). The runner clones the analyzed base DesignState per scenario
/// — sharing the clean prefix: stitched graph, provenance, design space
/// and arrival state all copy, none of it recomputes — applies the changes
/// incrementally, and fans the scenarios out across an executor. Each
/// clone analyzes on a private serial executor (executor regions do not
/// nest), so results are bit-identical at every runner thread count, and
/// bit-identical to a from-scratch analysis of each changed design.
///
/// A scenario that fails (invalid rewire, off-die move, ...) reports its
/// error instead of poisoning the batch.

#pragma once

#include <span>
#include <string>
#include <variant>
#include <vector>

#include "hssta/incr/design_state.hpp"

namespace hssta::incr {

/// Swap instance `inst`'s model for `model`.
struct ReplaceModule {
  size_t inst = 0;
  std::shared_ptr<const model::TimingModel> model;
};

/// Move instance `inst` to a new origin.
struct MoveInstance {
  size_t inst = 0;
  double x = 0.0;
  double y = 0.0;
};

/// Re-route connection `conn` to new endpoints.
struct RewireConnection {
  size_t conn = 0;
  hier::PortRef from_output;
  hier::PortRef to_input;
};

/// Scale parameter `param`'s correlated sensitivity by `scale`.
struct SigmaScale {
  size_t param = 0;
  double scale = 1.0;
};

using Change =
    std::variant<ReplaceModule, MoveInstance, RewireConnection, SigmaScale>;

struct Scenario {
  std::string label;
  std::vector<Change> changes;
};

struct ScenarioResult {
  std::string label;
  /// Position of the scenario in the submitted batch (set by the runner),
  /// so an error can be traced back to the originating scenario even when
  /// labels collide or are empty.
  size_t index = 0;
  /// describe_changes() of the scenario's change list (set by the runner).
  /// Error payloads carry it next to the exception text, so a failed
  /// what-if names the change that caused it, not just the symptom.
  std::string changes;
  /// scenario_fingerprint() of (base design, change list) — the stable
  /// identity the campaign layer keys shards by (set by the runner). A
  /// one-shot sweep result and a campaign shard for the same base + changes
  /// carry the same value, so reports can be joined across runs.
  uint64_t fingerprint = 0;
  /// The design delay under the scenario (valid when ok()).
  timing::CanonicalForm delay;
  IncrementalStats stats;
  double seconds = 0.0;
  std::string error;  ///< non-empty when the scenario threw

  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Apply one change to a state (the dispatch ScenarioRunner uses; exposed
/// for callers driving a DesignState from parsed change lists).
void apply_change(DesignState& state, const Change& change);

/// Human-readable one-line description of a change ("swap u1 -> c1908_v2",
/// "move u0 to (3, 0)", "rewire c2 to u0.o1:u1.i0", "sigma p0 x1.2") —
/// used by scenario error payloads and server logs.
[[nodiscard]] std::string describe_change(const Change& change);
/// "; "-joined describe_change() over a change list.
[[nodiscard]] std::string describe_changes(std::span<const Change> changes);

/// Stable identity of a what-if: util::Fnv1a over the base design's
/// state_fingerprint() and the structural content of every change (swapped
/// models hash by model_fingerprint(), i.e. by content, not by pointer or
/// file path). Campaign shards are named by this value; resume skips a
/// scenario exactly when its fingerprint already has a shard.
[[nodiscard]] uint64_t scenario_fingerprint(uint64_t base_fingerprint,
                                            std::span<const Change> changes);

class ScenarioRunner {
 public:
  /// `base` must have no pending changes (analyze() it first) and must
  /// outlive the runner.
  explicit ScenarioRunner(const DesignState& base);

  /// Run every scenario, fanning out across `ex` (the overload without an
  /// executor uses a serial loop). Results are positionally matched to the
  /// scenarios and independent of the executor.
  [[nodiscard]] std::vector<ScenarioResult> run(
      std::span<const Scenario> scenarios) const;
  [[nodiscard]] std::vector<ScenarioResult> run(
      std::span<const Scenario> scenarios, exec::Executor& ex) const;

  /// state_fingerprint() of the base, computed once at construction; the
  /// runner combines it with each scenario's change list to stamp
  /// ScenarioResult::fingerprint.
  [[nodiscard]] uint64_t base_fingerprint() const { return base_fp_; }

 private:
  const DesignState* base_;
  uint64_t base_fp_ = 0;
};

}  // namespace hssta::incr
