#include "hssta/incr/scenario.hpp"

#include "hssta/util/error.hpp"
#include "hssta/util/timer.hpp"

namespace hssta::incr {

void apply_change(DesignState& state, const Change& change) {
  std::visit(
      [&](const auto& c) {
        using T = std::decay_t<decltype(c)>;
        if constexpr (std::is_same_v<T, ReplaceModule>) {
          state.replace_module(c.inst, c.model);
        } else if constexpr (std::is_same_v<T, MoveInstance>) {
          state.move_instance(c.inst, c.x, c.y);
        } else if constexpr (std::is_same_v<T, RewireConnection>) {
          state.rewire_connection(c.conn, c.from_output, c.to_input);
        } else {
          state.set_parameter_sigma(c.param, c.scale);
        }
      },
      change);
}

ScenarioRunner::ScenarioRunner(const DesignState& base) : base_(&base) {
  HSSTA_REQUIRE(!base.pending(),
                "scenario base has pending changes; analyze() it first");
}

std::vector<ScenarioResult> ScenarioRunner::run(
    std::span<const Scenario> scenarios) const {
  exec::SerialExecutor ex;
  return run(scenarios, ex);
}

std::vector<ScenarioResult> ScenarioRunner::run(
    std::span<const Scenario> scenarios, exec::Executor& ex) const {
  std::vector<ScenarioResult> out(scenarios.size());
  if (scenarios.empty()) return out;
  // Each slot writes only its own result; per-scenario analysis runs on a
  // private serial executor, so the fan-out never nests regions and the
  // results do not depend on the runner's thread count.
  const exec::Executor::Exclusive scope(ex);
  ex.parallel_for(scenarios.size(), [&](size_t i, exec::Workspace&) {
    const Scenario& sc = scenarios[i];
    ScenarioResult& r = out[i];
    r.label = sc.label;
    WallTimer timer;
    try {
      DesignState state(*base_);  // shares the clean prefix by copy
      state.set_executor(std::make_shared<exec::SerialExecutor>());
      for (const Change& c : sc.changes) apply_change(state, c);
      r.delay = state.analyze();
      r.stats = state.stats();
    } catch (const std::exception& e) {
      r.error = e.what();
    }
    r.seconds = timer.seconds();
  });
  return out;
}

}  // namespace hssta::incr
