#include "hssta/incr/scenario.hpp"

#include <cstdio>

#include "hssta/util/error.hpp"
#include "hssta/util/hash.hpp"
#include "hssta/util/timer.hpp"

namespace hssta::incr {

void apply_change(DesignState& state, const Change& change) {
  std::visit(
      [&](const auto& c) {
        using T = std::decay_t<decltype(c)>;
        if constexpr (std::is_same_v<T, ReplaceModule>) {
          state.replace_module(c.inst, c.model);
        } else if constexpr (std::is_same_v<T, MoveInstance>) {
          state.move_instance(c.inst, c.x, c.y);
        } else if constexpr (std::is_same_v<T, RewireConnection>) {
          state.rewire_connection(c.conn, c.from_output, c.to_input);
        } else {
          state.set_parameter_sigma(c.param, c.scale);
        }
      },
      change);
}

namespace {

/// %g formatting (matches the CLI's human-readable output, not the %.17g
/// of the JSON values — descriptions are labels, not data).
std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

}  // namespace

std::string describe_change(const Change& change) {
  return std::visit(
      [](const auto& c) -> std::string {
        using T = std::decay_t<decltype(c)>;
        if constexpr (std::is_same_v<T, ReplaceModule>) {
          return "swap u" + std::to_string(c.inst) + " -> " +
                 (c.model ? c.model->name() : "<null model>");
        } else if constexpr (std::is_same_v<T, MoveInstance>) {
          return "move u" + std::to_string(c.inst) + " to (" + fmt(c.x) +
                 ", " + fmt(c.y) + ")";
        } else if constexpr (std::is_same_v<T, RewireConnection>) {
          return "rewire c" + std::to_string(c.conn) + " to u" +
                 std::to_string(c.from_output.instance) + ".o" +
                 std::to_string(c.from_output.port) + ":u" +
                 std::to_string(c.to_input.instance) + ".i" +
                 std::to_string(c.to_input.port);
        } else {
          return "sigma p" + std::to_string(c.param) + " x" + fmt(c.scale);
        }
      },
      change);
}

std::string describe_changes(std::span<const Change> changes) {
  std::string out;
  for (const Change& c : changes)
    out += (out.empty() ? "" : "; ") + describe_change(c);
  return out;
}

uint64_t scenario_fingerprint(uint64_t base_fingerprint,
                              std::span<const Change> changes) {
  util::Fnv1a h;
  h.u64(base_fingerprint).u64(changes.size());
  for (const Change& change : changes) {
    std::visit(
        [&](const auto& c) {
          using T = std::decay_t<decltype(c)>;
          if constexpr (std::is_same_v<T, ReplaceModule>) {
            h.str("swap").u64(c.inst).u64(c.model ? model_fingerprint(*c.model)
                                                  : 0);
          } else if constexpr (std::is_same_v<T, MoveInstance>) {
            h.str("move").u64(c.inst).f64(c.x).f64(c.y);
          } else if constexpr (std::is_same_v<T, RewireConnection>) {
            h.str("rewire")
                .u64(c.conn)
                .u64(c.from_output.instance)
                .u64(c.from_output.port)
                .u64(c.to_input.instance)
                .u64(c.to_input.port);
          } else {
            h.str("sigma").u64(c.param).f64(c.scale);
          }
        },
        change);
  }
  return h.value();
}

ScenarioRunner::ScenarioRunner(const DesignState& base)
    : base_(&base), base_fp_(state_fingerprint(base)) {
  HSSTA_REQUIRE(!base.pending(),
                "scenario base has pending changes; analyze() it first");
}

std::vector<ScenarioResult> ScenarioRunner::run(
    std::span<const Scenario> scenarios) const {
  exec::SerialExecutor ex;
  return run(scenarios, ex);
}

std::vector<ScenarioResult> ScenarioRunner::run(
    std::span<const Scenario> scenarios, exec::Executor& ex) const {
  std::vector<ScenarioResult> out(scenarios.size());
  if (scenarios.empty()) return out;
  // Each slot writes only its own result; per-scenario analysis runs on a
  // private serial executor, so the fan-out never nests regions and the
  // results do not depend on the runner's thread count.
  const exec::Executor::Exclusive scope(ex);
  ex.parallel_for(scenarios.size(), [&](size_t i, exec::Workspace&) {
    const Scenario& sc = scenarios[i];
    ScenarioResult& r = out[i];
    r.label = sc.label;
    r.index = i;
    r.changes = describe_changes(sc.changes);
    r.fingerprint = scenario_fingerprint(base_fp_, sc.changes);
    WallTimer timer;
    try {
      DesignState state(*base_);  // shares the clean prefix by copy
      state.set_executor(std::make_shared<exec::SerialExecutor>());
      for (const Change& c : sc.changes) apply_change(state, c);
      r.delay = state.analyze();
      r.stats = state.stats();
    } catch (const std::exception& e) {
      r.error = e.what();
    }
    r.seconds = timer.seconds();
  });
  return out;
}

}  // namespace hssta::incr
