// incr/serialize.cpp — versioned persistence for incr::DesignState.
//
// Format "hsds 1": the same line/keyword text idioms as the .hstm model
// serializer (hex-float doubles for bit-exact round trips, strict counts
// via util::parse_count, named truncation errors, trailing content after
// 'end' rejected). Models are embedded length-prefixed — TimingModel::load
// consumes a whole stream and rejects trailing content, so each model's
// bytes are framed exactly and parsed from a private substream — and
// deduplicated by pointer, so the common many-instances-of-one-IP design
// stores each model once.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "hssta/incr/design_state.hpp"
#include "hssta/util/error.hpp"
#include "hssta/util/hash.hpp"
#include "hssta/util/strings.hpp"

namespace hssta::incr {

namespace {

/// Hex-float formatting for bit-exact round trips (same as the .hstm
/// serializer).
std::string hexf(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

double parse_double(const std::string& tok) {
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  HSSTA_REQUIRE(end && *end == '\0',
                "malformed number in design state file: " + tok);
  return v;
}

std::string checked_token(std::istream& is, const char* what) {
  std::string tok;
  if (!(is >> tok))
    throw Error(std::string("design state file truncated at ") + what);
  return tok;
}

void expect_keyword(std::istream& is, const std::string& kw) {
  const std::string tok = checked_token(is, kw.c_str());
  HSSTA_REQUIRE(tok == kw, "design state file: expected '" + kw + "', got '" +
                               tok + "'");
}

size_t parse_size(std::istream& is, const char* what) {
  return static_cast<size_t>(
      parse_count(std::string("design state file field '") + what + "'",
                  checked_token(is, what)));
}

void check_name(const std::string& name, const char* what) {
  HSSTA_REQUIRE(!name.empty(), std::string(what) + " name is empty");
  HSSTA_REQUIRE(name.find_first_of(" \t\n\r") == std::string::npos,
                std::string(what) + " names with whitespace cannot be "
                                    "serialized: '" +
                    name + "'");
}

/// An embedded model may not plausibly exceed this (the largest ISCAS
/// model serializes to well under a megabyte); a corrupt length must not
/// drive a giant allocation before the read fails.
constexpr size_t kMaxModelBytes = size_t{1} << 30;

}  // namespace

void DesignState::save(std::ostream& os) const {
  check_name(inputs_.name, "design");

  os << "hsds 1\n";
  os << "design " << inputs_.name << '\n';
  if (inputs_.fixed_die)
    os << "die fixed " << hexf(inputs_.fixed_die->width) << ' '
       << hexf(inputs_.fixed_die->height) << '\n';
  else
    os << "die auto\n";
  os << "mode "
     << (opts_.mode == hier::CorrelationMode::kReplacement ? "replacement"
                                                           : "global_only")
     << '\n';
  os << "load_aware " << (opts_.load_aware_boundary ? 1 : 0) << '\n';
  os << "interconnect " << hexf(opts_.interconnect_delay) << '\n';
  os << "pca " << hexf(opts_.pca.min_explained) << ' '
     << hexf(opts_.pca.rel_tol) << ' ' << opts_.pca.max_components << '\n';
  os << "sigma_scale " << opts_.param_sigma_scale.size();
  for (double s : opts_.param_sigma_scale) os << ' ' << hexf(s);
  os << '\n';

  // Shared models stored once, referenced by index.
  std::map<const model::TimingModel*, size_t> model_index;
  std::vector<const model::TimingModel*> models;
  for (const InstanceSpec& inst : inputs_.instances) {
    HSSTA_REQUIRE(inst.model != nullptr,
                  "instance '" + inst.name + "' has no model to serialize");
    if (model_index.emplace(inst.model.get(), models.size()).second)
      models.push_back(inst.model.get());
  }
  os << "models " << models.size() << '\n';
  for (size_t k = 0; k < models.size(); ++k) {
    std::ostringstream ms;
    models[k]->save(ms);
    const std::string bytes = ms.str();
    // Length-prefixed framing: TimingModel::load consumes a whole stream
    // (and rejects trailing content), so the loader must hand it exactly
    // these bytes in a private substream.
    os << "model " << k << ' ' << bytes.size() << '\n' << bytes;
  }

  os << "instances " << inputs_.instances.size() << '\n';
  for (const InstanceSpec& inst : inputs_.instances) {
    check_name(inst.name, "instance");
    os << "inst " << inst.name << ' ' << model_index.at(inst.model.get())
       << ' ' << hexf(inst.origin.x) << ' ' << hexf(inst.origin.y) << '\n';
  }

  os << "connections " << inputs_.connections.size() << '\n';
  for (const hier::Connection& c : inputs_.connections)
    os << "conn " << c.from_output.instance << ' ' << c.from_output.port
       << ' ' << c.to_input.instance << ' ' << c.to_input.port << '\n';

  os << "pins " << inputs_.primary_inputs.size() << '\n';
  for (const hier::PrimaryInput& pi : inputs_.primary_inputs) {
    check_name(pi.name, "primary input");
    os << "pin " << pi.name << ' ' << pi.sinks.size();
    for (const hier::PortRef& s : pi.sinks)
      os << ' ' << s.instance << ' ' << s.port;
    os << '\n';
  }

  os << "pouts " << inputs_.primary_outputs.size() << '\n';
  for (const hier::PrimaryOutput& po : inputs_.primary_outputs) {
    check_name(po.name, "primary output");
    os << "pout " << po.name << ' ' << po.source.instance << ' '
       << po.source.port << '\n';
  }
  os << "end\n";

  os.flush();
  HSSTA_REQUIRE(os.good(),
                "design state serialization failed: output stream entered "
                "an error state (disk full or sink closed?)");
}

void DesignState::save_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw Error("cannot open design state file for writing: " + path);
  save(os);
  os.close();
  if (!os) throw Error("write to design state file failed: " + path);
}

DesignState DesignState::load(std::istream& is,
                              std::shared_ptr<exec::Executor> ex,
                              timing::LevelParallel mode) {
  expect_keyword(is, "hsds");
  const std::string version = checked_token(is, "version");
  HSSTA_REQUIRE(version == "1",
                "unsupported design state format version " + version);

  DesignInputs inputs;
  expect_keyword(is, "design");
  inputs.name = checked_token(is, "design name");

  expect_keyword(is, "die");
  const std::string die_kind = checked_token(is, "die kind");
  if (die_kind == "fixed") {
    placement::Die die;
    die.width = parse_double(checked_token(is, "die width"));
    die.height = parse_double(checked_token(is, "die height"));
    inputs.fixed_die = die;
  } else {
    HSSTA_REQUIRE(die_kind == "auto", "bad die kind: " + die_kind);
  }

  hier::HierOptions opts;
  expect_keyword(is, "mode");
  const std::string mode_tok = checked_token(is, "mode");
  if (mode_tok == "replacement")
    opts.mode = hier::CorrelationMode::kReplacement;
  else if (mode_tok == "global_only")
    opts.mode = hier::CorrelationMode::kGlobalOnly;
  else
    throw Error("bad correlation mode in design state file: " + mode_tok);

  expect_keyword(is, "load_aware");
  const std::string la = checked_token(is, "load_aware");
  HSSTA_REQUIRE(la == "0" || la == "1", "bad load_aware flag: " + la);
  opts.load_aware_boundary = la == "1";

  expect_keyword(is, "interconnect");
  opts.interconnect_delay = parse_double(checked_token(is, "interconnect"));

  expect_keyword(is, "pca");
  opts.pca.min_explained = parse_double(checked_token(is, "pca explained"));
  opts.pca.rel_tol = parse_double(checked_token(is, "pca tolerance"));
  opts.pca.max_components = parse_size(is, "pca max components");

  expect_keyword(is, "sigma_scale");
  const size_t n_scales = parse_size(is, "sigma_scale count");
  for (size_t k = 0; k < n_scales; ++k)
    opts.param_sigma_scale.push_back(
        parse_double(checked_token(is, "sigma_scale value")));

  expect_keyword(is, "models");
  const size_t n_models = parse_size(is, "models count");
  std::vector<std::shared_ptr<const model::TimingModel>> models;
  models.reserve(n_models);
  for (size_t k = 0; k < n_models; ++k) {
    expect_keyword(is, "model");
    const size_t idx = parse_size(is, "model index");
    HSSTA_REQUIRE(idx == k, "design state file: models out of order");
    const size_t bytes = parse_size(is, "model bytes");
    HSSTA_REQUIRE(bytes > 0 && bytes <= kMaxModelBytes,
                  "design state file: implausible model size");
    // The framing is exact: one newline after the count, then the bytes.
    HSSTA_REQUIRE(is.get() == '\n',
                  "design state file: malformed model framing");
    std::string text(bytes, '\0');
    is.read(text.data(), static_cast<std::streamsize>(bytes));
    if (static_cast<size_t>(is.gcount()) != bytes)
      throw Error("design state file truncated at embedded model " +
                  std::to_string(k));
    std::istringstream ms(text);
    models.push_back(std::make_shared<const model::TimingModel>(
        model::TimingModel::load(ms)));
  }

  expect_keyword(is, "instances");
  const size_t n_inst = parse_size(is, "instances count");
  for (size_t k = 0; k < n_inst; ++k) {
    expect_keyword(is, "inst");
    InstanceSpec spec;
    spec.name = checked_token(is, "instance name");
    const size_t m = parse_size(is, "instance model");
    HSSTA_REQUIRE(m < models.size(),
                  "design state file: instance model index out of range");
    spec.model = models[m];
    spec.origin.x = parse_double(checked_token(is, "instance x"));
    spec.origin.y = parse_double(checked_token(is, "instance y"));
    inputs.instances.push_back(std::move(spec));
  }

  expect_keyword(is, "connections");
  const size_t n_conn = parse_size(is, "connections count");
  for (size_t k = 0; k < n_conn; ++k) {
    expect_keyword(is, "conn");
    hier::Connection c;
    c.from_output.instance = parse_size(is, "connection from instance");
    c.from_output.port = parse_size(is, "connection from port");
    c.to_input.instance = parse_size(is, "connection to instance");
    c.to_input.port = parse_size(is, "connection to port");
    inputs.connections.push_back(c);
  }

  expect_keyword(is, "pins");
  const size_t n_pins = parse_size(is, "pins count");
  for (size_t k = 0; k < n_pins; ++k) {
    expect_keyword(is, "pin");
    hier::PrimaryInput pi;
    pi.name = checked_token(is, "pin name");
    const size_t n_sinks = parse_size(is, "pin sinks");
    for (size_t s = 0; s < n_sinks; ++s) {
      hier::PortRef ref;
      ref.instance = parse_size(is, "pin sink instance");
      ref.port = parse_size(is, "pin sink port");
      pi.sinks.push_back(ref);
    }
    inputs.primary_inputs.push_back(std::move(pi));
  }

  expect_keyword(is, "pouts");
  const size_t n_pouts = parse_size(is, "pouts count");
  for (size_t k = 0; k < n_pouts; ++k) {
    expect_keyword(is, "pout");
    hier::PrimaryOutput po;
    po.name = checked_token(is, "pout name");
    po.source.instance = parse_size(is, "pout instance");
    po.source.port = parse_size(is, "pout port");
    inputs.primary_outputs.push_back(std::move(po));
  }

  expect_keyword(is, "end");
  std::string extra;
  if (is >> extra)
    throw Error("design state file: trailing content after 'end': '" + extra +
                "'");

  // Structural validity (ports in range, every input driven once, ...) is
  // checked by the first analyze(), exactly like a freshly assembled state.
  return DesignState(std::move(inputs), std::move(opts), std::move(ex), mode);
}

DesignState DesignState::load_file(const std::string& path,
                                   std::shared_ptr<exec::Executor> ex,
                                   timing::LevelParallel mode) {
  std::ifstream is(path);
  if (!is) throw Error("cannot open design state file: " + path);
  return load(is, std::move(ex), mode);
}

uint64_t model_fingerprint(const model::TimingModel& m) {
  std::ostringstream os;
  m.save(os);
  return util::Fnv1a().str(os.str()).value();
}

uint64_t state_fingerprint(const DesignState& state) {
  std::ostringstream os;
  state.save(os);
  return util::Fnv1a().str(os.str()).value();
}

}  // namespace hssta::incr
