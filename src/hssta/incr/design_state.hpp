/// \file design_state.hpp
/// incr::DesignState — incremental hierarchical re-analysis.
///
/// The point of hierarchical SSTA (paper Section V) is that pre-
/// characterized module models make the top-level analysis cheap enough to
/// repeat; this engine makes *repeating* it cheap too. A DesignState holds
/// the stitched design-level timing graph together with full provenance
/// (which vertices/edges came from which ModuleInstance, which replacement
/// matrix R produced their coefficients) and the propagated arrival state.
/// The change API — replace_module, move_instance, rewire_connection,
/// set_parameter_sigma — records the minimal dirty set; analyze() then
/// recomputes only what the change can reach:
///
///  * replace_module with a geometry-compatible variant (same die, grid
///    centers, parameters, correlation profile — the usual ECO: same
///    footprint, different internals) restitches that one instance's
///    subgraph and re-propagates only the cone downstream of it, reusing
///    the design grid, the design-space PCA and every other instance's
///    stitched edges untouched;
///  * rewire_connection restitches one boundary edge and re-propagates
///    downstream of its old and new targets;
///  * set_parameter_sigma refreshes edge coefficients in place (reusing
///    the cached R of every instance) and re-propagates, skipping grid and
///    PCA construction;
///  * move_instance in replacement mode rebuilds grid + design space (the
///    PCA genuinely changes) but reuses the graph structure, refreshing
///    coefficients in place when the space dimension is unchanged; in the
///    global-only baseline a move does not affect the analysis at all.
///
/// Changes that invalidate the coefficient layout (geometry-incompatible
/// swaps, a design-PCA dimension change) fall back to a full from-scratch
/// stitch — still through analyze(), still correct, just not incremental
/// (counted in stats().full_builds).
///
/// Contract: after any sequence of changes, analyze() returns results
/// bit-identical to a from-scratch flow::Design / analyze_hierarchical run
/// of the changed design, at every thread count (pinned by the
/// IncrementalDifferential fuzz suite). The downstream-of-dirty sweep
/// recomputes a vertex's arrival from its fanins with exactly the
/// arithmetic of the full sweep and stops propagating wherever the
/// recomputed form compares bit-equal to the stored one.
///
/// A DesignState is copyable; incr::ScenarioRunner clones the analyzed
/// base per scenario so batched what-ifs share the clean prefix state.
/// MaxDiagnostics counters are not maintained incrementally (arrivals()
/// reports zeroed diagnostics after an incremental step).

#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "hssta/exec/executor.hpp"
#include "hssta/hier/design.hpp"
#include "hssta/hier/stitch.hpp"
#include "hssta/model/timing_model.hpp"
#include "hssta/timing/propagate.hpp"

namespace hssta::incr {

/// One placed instance, owning (sharing) its model.
struct InstanceSpec {
  std::string name;
  std::shared_ptr<const model::TimingModel> model;
  placement::Point origin;
};

/// The structural description a DesignState analyzes — the same data a
/// hier::HierDesign references, with owned models so swapped-in variants
/// outlive the caller's scope.
struct DesignInputs {
  std::string name = "design";
  /// Fixed die outline; unset = bounding box of the placed instances,
  /// recomputed whenever an instance moves (matching flow::Design).
  std::optional<placement::Die> fixed_die;
  std::vector<InstanceSpec> instances;
  std::vector<hier::Connection> connections;
  std::vector<hier::PrimaryInput> primary_inputs;
  std::vector<hier::PrimaryOutput> primary_outputs;
};

/// Work counters; analyze() updates the per-run fields, the totals
/// accumulate over the state's lifetime.
struct IncrementalStats {
  uint64_t analyses = 0;        ///< analyze() calls that found pending work
  uint64_t full_builds = 0;     ///< from-scratch stitches (incl. the first)
  uint64_t coefficient_refreshes = 0;  ///< in-place all-edge refreshes
  uint64_t instances_restitched = 0;
  uint64_t connections_restitched = 0;
  uint64_t vertices_recomputed = 0;  ///< arrival folds in the last analyze
  uint64_t vertices_live = 0;        ///< live vertices at the last analyze
  double last_seconds = 0.0;         ///< wall time of the last analyze
};

class DesignState {
 public:
  /// `ex` null picks a serial executor. `mode` governs whether full
  /// re-propagations fan each level across the executor (speed knob only).
  explicit DesignState(DesignInputs inputs, hier::HierOptions opts = {},
                       std::shared_ptr<exec::Executor> ex = nullptr,
                       timing::LevelParallel mode = timing::LevelParallel::kAuto);

  /// --- change API (cheap: records dirty state; analyze() recomputes) ----

  /// Swap instance `inst`'s timing model for a variant.
  void replace_module(size_t inst,
                      std::shared_ptr<const model::TimingModel> model);
  /// Re-place instance `inst` at a new origin.
  void move_instance(size_t inst, double x, double y);
  /// Re-route top-level connection `conn` to new endpoints (either or both
  /// may change). Validity — ports in range, target driven once — is
  /// checked at analyze() time, exactly like a from-scratch build.
  void rewire_connection(size_t conn, hier::PortRef from_output,
                         hier::PortRef to_input);
  /// Scale parameter `param`'s correlated sensitivity by `scale` on every
  /// instance-derived edge (see HierOptions::param_sigma_scale).
  void set_parameter_sigma(size_t param, double scale);

  /// True when changes are recorded that analyze() has not flushed yet
  /// (also true before the first analyze()).
  [[nodiscard]] bool pending() const;

  /// Flush pending changes and return the design delay distribution.
  /// Throws (leaving derived state untouched) when the changed design
  /// fails validation — the same errors a from-scratch build raises.
  const timing::CanonicalForm& analyze();

  /// --- views (valid after analyze(); throw before the first one) --------

  [[nodiscard]] const timing::CanonicalForm& delay() const;
  [[nodiscard]] const timing::TimingGraph& graph() const;
  [[nodiscard]] const timing::PropagationResult& arrivals() const;
  /// Arrival of a stitched vertex by name ("inst/vertex", or a design port
  /// name), materialized from the arrival bank; nullopt when absent or
  /// unreached.
  [[nodiscard]] std::optional<timing::CanonicalForm> arrival(
      const std::string& name) const;
  [[nodiscard]] std::shared_ptr<const variation::VariationSpace> design_space()
      const;
  [[nodiscard]] const hier::DesignGrid& grid() const;

  [[nodiscard]] const DesignInputs& inputs() const { return inputs_; }
  [[nodiscard]] const hier::HierOptions& options() const { return opts_; }
  [[nodiscard]] const IncrementalStats& stats() const { return stats_; }

  /// Rebind the executor (speed knob only; results never depend on it).
  /// ScenarioRunner gives every clone a serial executor of its own.
  void set_executor(std::shared_ptr<exec::Executor> ex);

  /// --- serialization (incr/serialize.cpp) --------------------------------
  ///
  /// Versioned text format ("hsds 1"), same idioms as the .hstm serializer:
  /// hex-float doubles for bit-exact round trips, strict counts, named
  /// truncation errors, trailing content after 'end' rejected. The save
  /// captures the *logical* design — inputs (with every model embedded,
  /// shared models deduplicated) and options, pending changes included —
  /// not the derived graphs: a loaded state re-derives everything in its
  /// first analyze() as a deterministic full build, so post-load results
  /// are bit-identical to the saved state's analyze() at any thread count.
  void save(std::ostream& os) const;
  void save_file(const std::string& path) const;
  [[nodiscard]] static DesignState load(
      std::istream& is, std::shared_ptr<exec::Executor> ex = nullptr,
      timing::LevelParallel mode = timing::LevelParallel::kAuto);
  [[nodiscard]] static DesignState load_file(
      const std::string& path, std::shared_ptr<exec::Executor> ex = nullptr,
      timing::LevelParallel mode = timing::LevelParallel::kAuto);

 private:
  /// The hier:: view of the current inputs (models referenced, not owned).
  [[nodiscard]] hier::HierDesign make_view() const;
  [[nodiscard]] size_t num_params() const;

  void full_build(const hier::HierDesign& view);
  /// Refresh sigma_mult_ from the current options and stitched layout.
  void recompute_sigma_multipliers();
  void refresh_design_space(const hier::HierDesign& view);
  void refresh_coefficients(const hier::HierDesign& view);
  void restitch_instance(const hier::HierDesign& view, size_t t,
                         std::vector<timing::VertexId>& seeds);
  void restitch_connection(const hier::HierDesign& view, size_t c,
                           std::vector<timing::VertexId>& seeds);
  void propagate_full();
  void propagate_cone(const std::vector<timing::VertexId>& seeds);
  void clear_pending();

  DesignInputs inputs_;
  hier::HierOptions opts_;
  std::shared_ptr<exec::Executor> exec_;
  timing::LevelParallel mode_ = timing::LevelParallel::kAuto;

  /// --- derived state -----------------------------------------------------
  std::optional<hier::StitchedDesign> st_;
  std::vector<double> sigma_mult_;  ///< per-slot multipliers ({} = all 1)
  timing::PropagationResult arrivals_;
  timing::CanonicalForm delay_;
  IncrementalStats stats_;

  /// --- pending dirty state ------------------------------------------------
  bool full_rebuild_ = true;     ///< layout invalidated (or first build)
  bool space_dirty_ = false;     ///< geometry changed: rebuild grid + PCA
  bool coeffs_dirty_ = false;    ///< refresh every edge delay in place
  bool revalidate_ = false;      ///< structure moved but analysis unchanged
  std::vector<uint8_t> inst_dirty_;  ///< per instance: restitch subgraph
  std::vector<uint8_t> conn_dirty_;  ///< per connection: restitch edge
  /// Per pending rewire: the *stitched* (pre-rewire) target port, recorded
  /// at the first rewire of each connection. restitch_connection seeds it
  /// even when the old edge itself died with a restitched instance's
  /// subgraph — the abandoned target lost its driver either way.
  std::map<size_t, hier::PortRef> rewire_old_targets_;
};

/// Stable 64-bit content fingerprint of a timing model: util::Fnv1a over
/// its serialized (.hstm) text, so two models compare equal exactly when
/// their saved bytes do — the identity the campaign layer keys swapped-in
/// variants by (file paths don't matter, content does).
[[nodiscard]] uint64_t model_fingerprint(const model::TimingModel& m);

/// Stable 64-bit content fingerprint of a DesignState's logical design:
/// util::Fnv1a over its serialized ("hsds") text — inputs, embedded
/// models and analysis options, pending changes included. Two states with
/// the same fingerprint analyze to bit-identical results.
[[nodiscard]] uint64_t state_fingerprint(const DesignState& state);

}  // namespace hssta::incr
