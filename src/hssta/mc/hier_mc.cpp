#include "hssta/mc/hier_mc.hpp"

#include "hssta/timing/builder.hpp"
#include "hssta/util/error.hpp"

namespace hssta::mc {

using hier::HierDesign;
using hier::PortRef;
using timing::EdgeId;
using timing::VertexId;

FlatCircuit flatten_design(const HierDesign& design,
                           const hier::DesignGrid& grid,
                           const FlattenOptions& opts) {
  design.validate();
  const auto& instances = design.instances();
  for (const hier::ModuleInstance& inst : instances)
    HSSTA_REQUIRE(inst.netlist != nullptr && inst.module_placement != nullptr,
                  "flattening needs netlist + placement on instance " +
                      inst.name);

  const variation::VariationSpace& ref_space =
      *instances.front().model->variation().space;
  FlatCircuit fc(
      ref_space.parameters(),
      ref_space.correlation_model().correlation_matrix(grid.geometry),
      ref_space.parameters().load_sigma_rel);

  const size_t num_params = ref_space.num_params();

  // Instance subcircuits from their original netlists.
  std::vector<std::vector<VertexId>> inst_inputs(instances.size());
  std::vector<std::vector<VertexId>> inst_outputs(instances.size());
  for (size_t t = 0; t < instances.size(); ++t) {
    const hier::ModuleInstance& inst = instances[t];
    const timing::BuiltGraph built = timing::build_timing_graph(
        *inst.netlist, *inst.module_placement, inst.model->variation());
    const timing::TimingGraph& g = built.graph;

    std::vector<VertexId> vmap(g.num_vertex_slots(), timing::kNoVertex);
    for (VertexId v = 0; v < g.num_vertex_slots(); ++v) {
      if (!g.vertex_alive(v)) continue;
      vmap[v] = fc.add_vertex(inst.name + "/" + g.vertex(v).name, false,
                              false);
    }
    for (EdgeId e = 0; e < g.num_edge_slots(); ++e) {
      if (!g.edge_alive(e)) continue;
      const timing::TimingEdge& te = g.edge(e);
      const timing::EdgeSite& site = built.sites[e];
      const library::CellType& type = *inst.netlist->gate(site.gate).type;
      std::vector<double> sens(num_params, 0.0);
      for (size_t p = 0; p < num_params; ++p)
        sens[p] = site.nominal *
                  type.sensitivity(ref_space.parameters().at(p).name);
      fc.add_arc(vmap[te.from], vmap[te.to], site.nominal,
                 type.drive_res * site.load,
                 grid.instance_grids[t][site.grid], std::move(sens));
    }
    for (VertexId v : built.input_vertices)
      inst_inputs[t].push_back(vmap[v]);
    for (VertexId v : built.output_vertices)
      inst_outputs[t].push_back(vmap[v]);
  }

  auto in_vertex = [&](const PortRef& r) {
    return inst_inputs[r.instance][r.port];
  };
  auto out_vertex = [&](const PortRef& r) {
    return inst_outputs[r.instance][r.port];
  };

  for (const hier::Connection& c : design.connections()) {
    double nominal = opts.interconnect_delay;
    double load_term = 0.0;
    if (opts.load_aware_boundary) {
      const double drive =
          instances[c.from_output.instance].model->boundary()
              .output_drive_res[c.from_output.port];
      const double cap = instances[c.to_input.instance].model->boundary()
                             .input_cap[c.to_input.port];
      nominal += drive * cap;
      load_term = drive * cap;
    }
    fc.add_constant_arc(out_vertex(c.from_output), in_vertex(c.to_input),
                        nominal, load_term);
  }
  for (const hier::PrimaryInput& pi : design.primary_inputs()) {
    const VertexId v = fc.add_vertex(pi.name, true, false);
    for (const PortRef& r : pi.sinks)
      fc.add_constant_arc(v, in_vertex(r), 0.0, 0.0);
  }
  for (const hier::PrimaryOutput& po : design.primary_outputs()) {
    const VertexId v = fc.add_vertex(po.name, false, true);
    fc.add_constant_arc(out_vertex(po.source), v, 0.0, 0.0);
  }
  return fc;
}

stats::EmpiricalDistribution hier_flat_mc(const HierDesign& design,
                                          size_t samples, uint64_t seed,
                                          const FlattenOptions& opts) {
  exec::SerialExecutor ex;
  return hier_flat_mc(design, samples, seed, ex, opts);
}

stats::EmpiricalDistribution hier_flat_mc(const HierDesign& design,
                                          size_t samples, uint64_t seed,
                                          exec::Executor& ex,
                                          const FlattenOptions& opts) {
  const hier::DesignGrid grid = hier::build_design_grid(design);
  const FlatCircuit fc = flatten_design(design, grid, opts);
  return fc.sample_delay(samples, seed, ex);
}

}  // namespace hssta::mc
