#include "hssta/mc/sampler.hpp"

#include "hssta/timing/sta.hpp"
#include "hssta/util/error.hpp"

namespace hssta::mc {

namespace {

/// Per-worker scratch for canonical sampling.
struct CanonicalScratch {
  std::vector<double> y;
  std::vector<double> edge_delay;
};

stats::EmpiricalDistribution sample_with_base(const timing::TimingGraph& g,
                                              size_t samples, uint64_t base,
                                              exec::Executor& ex) {
  HSSTA_REQUIRE(samples > 0, "need at least one sample");
  std::vector<double> values(samples);
  ex.parallel_for(samples, [&](size_t s, exec::Workspace& ws) {
    CanonicalScratch& sc = ws.get<CanonicalScratch>();
    stats::Rng rng = stats::Rng::from_counter(base, s);
    sc.y.resize(g.dim());
    for (double& v : sc.y) v = rng.normal();
    sc.edge_delay.assign(g.num_edge_slots(), 0.0);
    for (timing::EdgeId e = 0; e < g.num_edge_slots(); ++e) {
      if (!g.edge_alive(e)) continue;
      sc.edge_delay[e] = g.edge(e).delay.evaluate(sc.y, rng.normal());
    }
    values[s] =
        timing::longest_path(g, sc.edge_delay).max_over_outputs(g);
  });
  return stats::EmpiricalDistribution(std::move(values));
}

}  // namespace

stats::EmpiricalDistribution sample_canonical_delay(
    const timing::TimingGraph& g, size_t samples, stats::Rng& rng) {
  // Validate before drawing the stream base so a failed call leaves the
  // caller's generator untouched.
  HSSTA_REQUIRE(samples > 0, "need at least one sample");
  exec::SerialExecutor ex;
  return sample_with_base(g, samples, rng.next_u64(), ex);
}

stats::EmpiricalDistribution sample_canonical_delay(
    const timing::TimingGraph& g, size_t samples, uint64_t seed,
    exec::Executor& ex) {
  stats::Rng seeder(seed);
  return sample_with_base(g, samples, seeder.next_u64(), ex);
}

}  // namespace hssta::mc
