#include "hssta/mc/sampler.hpp"

#include "hssta/timing/sta.hpp"
#include "hssta/util/error.hpp"

namespace hssta::mc {

stats::EmpiricalDistribution sample_canonical_delay(
    const timing::TimingGraph& g, size_t samples, stats::Rng& rng) {
  HSSTA_REQUIRE(samples > 0, "need at least one sample");
  stats::EmpiricalDistribution out;
  out.reserve(samples);
  std::vector<double> y(g.dim());
  std::vector<double> edge_delay(g.num_edge_slots(), 0.0);
  for (size_t s = 0; s < samples; ++s) {
    for (double& v : y) v = rng.normal();
    for (timing::EdgeId e = 0; e < g.num_edge_slots(); ++e) {
      if (!g.edge_alive(e)) continue;
      edge_delay[e] = g.edge(e).delay.evaluate(y, rng.normal());
    }
    out.add(timing::longest_path(g, edge_delay).max_over_outputs(g));
  }
  return out;
}

}  // namespace hssta::mc
