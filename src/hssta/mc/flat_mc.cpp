#include "hssta/mc/flat_mc.hpp"

#include <cmath>

#include "hssta/linalg/cholesky.hpp"
#include "hssta/stats/empirical.hpp"
#include "hssta/timing/sta.hpp"
#include "hssta/util/error.hpp"

namespace hssta::mc {

using timing::EdgeId;
using timing::TimingGraph;
using timing::VertexId;

size_t IoStats::idx(size_t i, size_t j) const {
  HSSTA_REQUIRE(i < num_inputs && j < num_outputs,
                "IO stats index out of range");
  return i * num_outputs + j;
}

bool IoStats::is_valid(size_t i, size_t j) const { return valid[idx(i, j)]; }

double IoStats::mean_at(size_t i, size_t j) const {
  const size_t k = idx(i, j);
  HSSTA_REQUIRE(valid[k], "unconnected IO pair");
  return mean[k];
}

double IoStats::sigma_at(size_t i, size_t j) const {
  const size_t k = idx(i, j);
  HSSTA_REQUIRE(valid[k], "unconnected IO pair");
  return sigma[k];
}

FlatCircuit::FlatCircuit(variation::ParameterSet params,
                         linalg::Matrix grid_correlation, double load_sigma)
    : structure_(size_t{0}),
      params_(std::move(params)),
      chol_(linalg::cholesky(grid_correlation)),
      load_sigma_(load_sigma) {
  params_.validate();
}

VertexId FlatCircuit::add_vertex(std::string name, bool is_input,
                                 bool is_output) {
  return structure_.add_vertex(std::move(name), is_input, is_output);
}

void FlatCircuit::add_arc(VertexId from, VertexId to, double nominal,
                          double load_term, size_t grid,
                          std::vector<double> sens) {
  HSSTA_REQUIRE(sens.size() == params_.size(),
                "need one sensitivity per parameter");
  HSSTA_REQUIRE(grid < num_grids(), "arc grid out of range");
  const EdgeId e = structure_.add_edge(from, to, timing::CanonicalForm(0));
  HSSTA_ASSERT(e == nominal_.size(), "arc bookkeeping out of sync");
  nominal_.push_back(nominal);
  load_term_.push_back(load_term);
  grid_.push_back(grid);
  sens_.insert(sens_.end(), sens.begin(), sens.end());
}

void FlatCircuit::add_constant_arc(VertexId from, VertexId to, double nominal,
                                   double load_sigma_term) {
  add_arc(from, to, nominal, load_sigma_term > 0.0 ? load_sigma_term : 0.0,
          0, std::vector<double>(params_.size(), 0.0));
}

FlatCircuit FlatCircuit::from_module(const timing::BuiltGraph& built,
                                     const netlist::Netlist& nl,
                                     const variation::ModuleVariation& mv) {
  FlatCircuit fc(mv.space->parameters(), mv.space->correlation(),
                 mv.space->parameters().load_sigma_rel);
  const TimingGraph& g = built.graph;
  const size_t num_params = fc.params_.size();

  std::vector<VertexId> vmap(g.num_vertex_slots(), timing::kNoVertex);
  for (VertexId v = 0; v < g.num_vertex_slots(); ++v) {
    if (!g.vertex_alive(v)) continue;
    const timing::TimingVertex& tv = g.vertex(v);
    vmap[v] = fc.add_vertex(tv.name, tv.is_input, tv.is_output);
  }
  for (EdgeId e = 0; e < g.num_edge_slots(); ++e) {
    if (!g.edge_alive(e)) continue;
    const timing::TimingEdge& te = g.edge(e);
    const timing::EdgeSite& site = built.sites[e];
    const library::CellType& type = *nl.gate(site.gate).type;
    std::vector<double> sens(num_params, 0.0);
    for (size_t p = 0; p < num_params; ++p)
      sens[p] = site.nominal * type.sensitivity(fc.params_.at(p).name);
    fc.add_arc(vmap[te.from], vmap[te.to], site.nominal,
               type.drive_res * site.load, site.grid, std::move(sens));
  }
  return fc;
}

void FlatCircuit::draw_deviates(stats::Rng& rng, std::vector<double>& global,
                                linalg::Matrix& local) const {
  const size_t num_params = params_.size();
  const size_t n = num_grids();
  global.resize(num_params);
  if (local.rows() != num_params || local.cols() != n)
    local = linalg::Matrix(num_params, n);

  std::vector<double> z(n);
  for (size_t p = 0; p < num_params; ++p) {
    const variation::ProcessParameter& param = params_.at(p);
    global[p] = param.sigma_global() * rng.normal();
    for (double& v : z) v = rng.normal();
    // local = sigma_l * L * z with the exact grid covariance.
    const double sl = param.sigma_local();
    for (size_t r = 0; r < n; ++r) {
      double acc = 0.0;
      const std::span<const double> row = chol_.row(r);
      for (size_t c = 0; c <= r; ++c) acc += row[c] * z[c];
      local(p, r) = sl * acc;
    }
  }
}

void FlatCircuit::evaluate_edges(stats::Rng& rng, McEvalScratch& sc) const {
  draw_deviates(rng, sc.global, sc.local);

  const size_t num_params = params_.size();
  sc.delays.resize(nominal_.size());
  for (size_t e = 0; e < nominal_.size(); ++e) {
    double d = nominal_[e];
    const double* sens = sens_.data() + e * num_params;
    for (size_t p = 0; p < num_params; ++p) {
      if (sens[p] == 0.0) continue;
      const double dev = sc.global[p] + sc.local(p, grid_[e]) +
                         params_.at(p).sigma_random() * rng.normal();
      d += sens[p] * dev;
    }
    if (load_term_[e] != 0.0)
      d += load_term_[e] * load_sigma_ * rng.normal();
    sc.delays[e] = d;
  }
}

stats::EmpiricalDistribution FlatCircuit::sample_delay_with_base(
    size_t samples, uint64_t base, exec::Executor& ex) const {
  HSSTA_REQUIRE(samples > 0, "need at least one sample");
  // Sample s depends only on (base, s): the batch can be partitioned
  // across threads arbitrarily and still fill the same slot values.
  std::vector<double> values(samples);
  ex.parallel_for(samples, [&](size_t s, exec::Workspace& ws) {
    McEvalScratch& sc = ws.get<McEvalScratch>();
    stats::Rng rng = stats::Rng::from_counter(base, s);
    evaluate_edges(rng, sc);
    values[s] = timing::longest_path(structure_, sc.delays)
                    .max_over_outputs(structure_);
  });
  return stats::EmpiricalDistribution(std::move(values));
}

stats::EmpiricalDistribution FlatCircuit::sample_delay(
    size_t samples, stats::Rng& rng) const {
  // Validate before drawing the stream base so a failed call leaves the
  // caller's generator untouched.
  HSSTA_REQUIRE(samples > 0, "need at least one sample");
  exec::SerialExecutor ex;
  return sample_delay_with_base(samples, rng.next_u64(), ex);
}

stats::EmpiricalDistribution FlatCircuit::sample_delay(
    size_t samples, uint64_t seed, exec::Executor& ex) const {
  stats::Rng seeder(seed);
  return sample_delay_with_base(samples, seeder.next_u64(), ex);
}

IoStats FlatCircuit::sample_io_delays(size_t samples, stats::Rng& rng) const {
  HSSTA_REQUIRE(samples > 0, "need at least one sample");
  const auto& ins = structure_.inputs();
  const auto& outs = structure_.outputs();
  IoStats st;
  st.num_inputs = ins.size();
  st.num_outputs = outs.size();
  const size_t cells = ins.size() * outs.size();
  st.valid.assign(cells, 0);
  st.mean.assign(cells, 0.0);
  st.sigma.assign(cells, 0.0);
  std::vector<double> m2(cells, 0.0);

  // Per input, precompute its reachable cone as a flat edge list in target
  // topological order: the per-sample inner loop then touches exactly the
  // edges that matter, with no validity branches or array resets (stamps).
  struct ConeEdge {
    VertexId from, to;
    EdgeId e;
  };
  const std::vector<VertexId> order = structure_.topo_order();
  std::vector<std::vector<ConeEdge>> cone(ins.size());
  std::vector<std::vector<std::pair<size_t, VertexId>>> cone_outs(ins.size());
  {
    std::vector<uint8_t> reach(structure_.num_vertex_slots(), 0);
    for (size_t i = 0; i < ins.size(); ++i) {
      std::fill(reach.begin(), reach.end(), 0);
      reach[ins[i]] = 1;
      for (VertexId v : order) {
        for (EdgeId e : structure_.vertex(v).fanin) {
          const VertexId u = structure_.edge(e).from;
          if (!reach[u]) continue;
          reach[v] = 1;
          cone[i].push_back(ConeEdge{u, v, e});
        }
      }
      for (size_t j = 0; j < outs.size(); ++j)
        if (reach[outs[j]]) {
          cone_outs[i].emplace_back(j, outs[j]);
          st.valid[i * outs.size() + j] = 1;
        }
    }
  }

  const uint64_t base = rng.next_u64();
  McEvalScratch sc;
  std::vector<double> time(structure_.num_vertex_slots(), 0.0);
  std::vector<uint32_t> stamp(structure_.num_vertex_slots(), 0);
  uint32_t token = 0;
  for (size_t s = 0; s < samples; ++s) {
    stats::Rng sample_rng = stats::Rng::from_counter(base, s);
    evaluate_edges(sample_rng, sc);
    const double n1 = static_cast<double>(s + 1);
    for (size_t i = 0; i < ins.size(); ++i) {
      ++token;
      time[ins[i]] = 0.0;
      stamp[ins[i]] = token;
      for (const ConeEdge& ce : cone[i]) {
        if (stamp[ce.from] != token) continue;  // multi-pin duplicates only
        const double cand = time[ce.from] + sc.delays[ce.e];
        if (stamp[ce.to] != token || cand > time[ce.to]) {
          time[ce.to] = cand;
          stamp[ce.to] = token;
        }
      }
      for (const auto& [j, vout] : cone_outs[i]) {
        const size_t k = i * outs.size() + j;
        const double x = time[vout];
        const double delta = x - st.mean[k];
        st.mean[k] += delta / n1;
        m2[k] += delta * (x - st.mean[k]);
      }
    }
  }
  for (size_t k = 0; k < cells; ++k)
    st.sigma[k] = samples > 1
                      ? std::sqrt(m2[k] / static_cast<double>(samples - 1))
                      : 0.0;
  return st;
}

}  // namespace hssta::mc
