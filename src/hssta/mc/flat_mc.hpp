/// \file flat_mc.hpp
/// Physical Monte Carlo reference (the paper's comparison baseline in
/// Table I and Figs. 6-7). A FlatCircuit is a scalar-evaluable view of a
/// module or flattened design: per timing arc the nominal delay, the
/// load-dependent share, the per-parameter delay slopes and the correlation
/// grid of its cell. Each sample draws
///   * one global deviate per parameter,
///   * per-grid local deviates with the exact grid covariance (Cholesky —
///     no PCA involved, so this is an independent reference),
///   * per-arc random deviates (parameter residue and load),
/// evaluates every arc and runs deterministic longest path.

#pragma once

#include <vector>

#include "hssta/exec/executor.hpp"
#include "hssta/linalg/matrix.hpp"
#include "hssta/netlist/netlist.hpp"
#include "hssta/stats/empirical.hpp"
#include "hssta/stats/rng.hpp"
#include "hssta/timing/builder.hpp"
#include "hssta/timing/graph.hpp"
#include "hssta/variation/space.hpp"

namespace hssta::mc {

/// Per-worker sampling scratch: parameter deviates, local grid deviates and
/// per-arc scalar delays, reused across samples via exec::Workspace.
struct McEvalScratch {
  std::vector<double> global;
  linalg::Matrix local;
  std::vector<double> delays;
};

/// Per-IO-pair sample statistics (the Monte Carlo counterpart of the
/// canonical DelayMatrix; backs the paper's merr/verr columns).
struct IoStats {
  size_t num_inputs = 0;
  size_t num_outputs = 0;
  std::vector<double> mean;    ///< row-major inputs x outputs
  std::vector<double> sigma;
  std::vector<uint8_t> valid;

  [[nodiscard]] size_t idx(size_t i, size_t j) const;
  [[nodiscard]] bool is_valid(size_t i, size_t j) const;
  [[nodiscard]] double mean_at(size_t i, size_t j) const;
  [[nodiscard]] double sigma_at(size_t i, size_t j) const;
};

class FlatCircuit {
 public:
  /// Scalar view of one module: the BuiltGraph supplies structure and edge
  /// sites, the netlist supplies cell sensitivities, the ModuleVariation
  /// supplies grids and the correlation to sample from.
  [[nodiscard]] static FlatCircuit from_module(
      const timing::BuiltGraph& built, const netlist::Netlist& nl,
      const variation::ModuleVariation& mv);

  /// Number of sampled grids (module grids, or design grids for flattened
  /// designs).
  [[nodiscard]] size_t num_grids() const { return chol_.rows(); }
  [[nodiscard]] const timing::TimingGraph& structure() const {
    return structure_;
  }

  /// Circuit-delay distribution over `samples` draws. Sampling is
  /// counter-based: sample s is drawn from its own generator
  /// Rng::from_counter(base, s), where the stream base is one draw from
  /// `rng` — so sample values depend only on (base, s), never on loop
  /// order or batch size.
  [[nodiscard]] stats::EmpiricalDistribution sample_delay(
      size_t samples, stats::Rng& rng) const;

  /// Same distribution, with the sample batch fanned out across `ex`. The
  /// stream base is derived as one draw from Rng(seed), so this matches
  /// the Rng& overload called with Rng(seed) bit-for-bit at every thread
  /// count.
  [[nodiscard]] stats::EmpiricalDistribution sample_delay(
      size_t samples, uint64_t seed, exec::Executor& ex) const;

  /// Per-IO-pair delay statistics (one scalar longest path per input per
  /// sample — the expensive Table I reference). Counter-based like
  /// sample_delay.
  [[nodiscard]] IoStats sample_io_delays(size_t samples,
                                         stats::Rng& rng) const;

  /// --- assembly (used by the hierarchical flattener) ----------------------

  FlatCircuit(variation::ParameterSet params, linalg::Matrix grid_correlation,
              double load_sigma);
  timing::VertexId add_vertex(std::string name, bool is_input,
                              bool is_output);
  /// Arc with physical annotation; `sens` holds d0 * s_p per parameter.
  void add_arc(timing::VertexId from, timing::VertexId to, double nominal,
               double load_term, size_t grid, std::vector<double> sens);
  /// Constant-delay arc (top-level interconnect).
  void add_constant_arc(timing::VertexId from, timing::VertexId to,
                        double nominal, double load_sigma_term);

 private:
  [[nodiscard]] stats::EmpiricalDistribution sample_delay_with_base(
      size_t samples, uint64_t base, exec::Executor& ex) const;
  void draw_deviates(stats::Rng& rng, std::vector<double>& global,
                     linalg::Matrix& local) const;
  void evaluate_edges(stats::Rng& rng, McEvalScratch& sc) const;

  timing::TimingGraph structure_;
  variation::ParameterSet params_;
  linalg::Matrix chol_;   ///< Cholesky factor of the grid correlation
  double load_sigma_ = 0.0;

  // Per edge (indexed by EdgeId): physical data.
  std::vector<double> nominal_;
  std::vector<double> load_term_;  ///< drive_res * load (gets load noise)
  std::vector<size_t> grid_;
  std::vector<double> sens_;       ///< row-major edges x params, d0 * s_p
};

}  // namespace hssta::mc
