/// \file hier_mc.hpp
/// Flattened hierarchical Monte Carlo: the ground truth of the paper's
/// Fig. 7. Every instance's *original* netlist is flattened onto the design
/// die, cells keep their module-local placement shifted by the instance
/// origin, and the local parameter deviates are drawn with the exact
/// design-level grid covariance — so cross-module spatial correlation is
/// physically present, independent of any PCA or canonical machinery.

#pragma once

#include "hssta/hier/design.hpp"
#include "hssta/hier/design_grid.hpp"
#include "hssta/mc/flat_mc.hpp"

namespace hssta::mc {

struct FlattenOptions {
  /// Mirror of HierOptions::interconnect_delay.
  double interconnect_delay = 0.0;
  /// Mirror of HierOptions::load_aware_boundary.
  bool load_aware_boundary = false;
};

/// Flatten a design (all instances must carry netlist + module placement)
/// into a scalar-evaluable circuit over the design grid.
[[nodiscard]] FlatCircuit flatten_design(const hier::HierDesign& design,
                                         const hier::DesignGrid& grid,
                                         const FlattenOptions& opts = {});

/// Convenience: flatten and sample the design delay distribution.
[[nodiscard]] stats::EmpiricalDistribution hier_flat_mc(
    const hier::HierDesign& design, size_t samples, uint64_t seed,
    const FlattenOptions& opts = {});

/// Same samples with the batch fanned out across `ex` (bit-identical to
/// the serial overload at every thread count).
[[nodiscard]] stats::EmpiricalDistribution hier_flat_mc(
    const hier::HierDesign& design, size_t samples, uint64_t seed,
    exec::Executor& ex, const FlattenOptions& opts = {});

}  // namespace hssta::mc
