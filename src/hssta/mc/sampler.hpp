/// \file sampler.hpp
/// Monte Carlo over canonical timing graphs: samples the correlated
/// variables and every edge's private random, evaluates scalar edge delays
/// and runs deterministic longest path. This isolates the propagation
/// (Clark max) approximation — the sampled model is exactly the canonical
/// one the SSTA engine sees.

#pragma once

#include "hssta/stats/empirical.hpp"
#include "hssta/stats/rng.hpp"
#include "hssta/timing/graph.hpp"

namespace hssta::mc {

/// Circuit-delay samples of a canonical graph (max over output ports).
[[nodiscard]] stats::EmpiricalDistribution sample_canonical_delay(
    const timing::TimingGraph& g, size_t samples, stats::Rng& rng);

}  // namespace hssta::mc
