/// \file sampler.hpp
/// Monte Carlo over canonical timing graphs: samples the correlated
/// variables and every edge's private random, evaluates scalar edge delays
/// and runs deterministic longest path. This isolates the propagation
/// (Clark max) approximation — the sampled model is exactly the canonical
/// one the SSTA engine sees.
///
/// Sampling is counter-based (see stats::Rng::from_counter): sample s is
/// drawn from its own generator keyed by (stream base, s), so results are
/// independent of loop order and bit-identical at every thread count.

#pragma once

#include "hssta/exec/executor.hpp"
#include "hssta/stats/empirical.hpp"
#include "hssta/stats/rng.hpp"
#include "hssta/timing/graph.hpp"

namespace hssta::mc {

/// Circuit-delay samples of a canonical graph (max over output ports).
/// The stream base is one draw from `rng`.
[[nodiscard]] stats::EmpiricalDistribution sample_canonical_delay(
    const timing::TimingGraph& g, size_t samples, stats::Rng& rng);

/// Same samples, fanned out across `ex`; matches the Rng& overload called
/// with Rng(seed) bit-for-bit.
[[nodiscard]] stats::EmpiricalDistribution sample_canonical_delay(
    const timing::TimingGraph& g, size_t samples, uint64_t seed,
    exec::Executor& ex);

}  // namespace hssta::mc
