/// \file histogram.hpp
/// Fixed-range uniform-bin histogram; used for the paper's Fig. 6
/// (criticality histogram) and general bench reporting.

#pragma once

#include <cstddef>
#include <vector>

namespace hssta::stats {

class Histogram {
 public:
  /// Bins of equal width covering [lo, hi]; values outside are clamped to
  /// the first/last bin so no sample is silently dropped.
  Histogram(double lo, double hi, size_t bins);

  void add(double x);
  void add_all(const std::vector<double>& xs);

  [[nodiscard]] size_t bins() const { return counts_.size(); }
  [[nodiscard]] size_t count(size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] size_t total() const { return total_; }
  [[nodiscard]] const std::vector<size_t>& counts() const { return counts_; }

  /// bins()+1 edges from lo to hi.
  [[nodiscard]] std::vector<double> edges() const;

 private:
  double lo_, hi_;
  std::vector<size_t> counts_;
  size_t total_ = 0;
};

}  // namespace hssta::stats
