#include "hssta/stats/empirical.hpp"

#include <algorithm>
#include <cmath>

#include "hssta/util/error.hpp"

namespace hssta::stats {

void Moments::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Moments::mean() const {
  HSSTA_REQUIRE(n_ > 0, "mean of empty moment accumulator");
  return mean_;
}

double Moments::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double Moments::stddev() const { return std::sqrt(variance()); }

EmpiricalDistribution::EmpiricalDistribution(std::vector<double> samples)
    : samples_(std::move(samples)) {}

void EmpiricalDistribution::add(double x) {
  samples_.push_back(x);
  sorted_valid_ = false;
}

double EmpiricalDistribution::mean() const {
  HSSTA_REQUIRE(!samples_.empty(), "mean of empty distribution");
  double acc = 0.0;
  for (double v : samples_) acc += v;
  return acc / static_cast<double>(samples_.size());
}

double EmpiricalDistribution::stddev() const {
  HSSTA_REQUIRE(samples_.size() >= 2, "stddev needs at least two samples");
  const double m = mean();
  double acc = 0.0;
  for (double v : samples_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double EmpiricalDistribution::min() const {
  HSSTA_REQUIRE(!samples_.empty(), "min of empty distribution");
  return *std::min_element(samples_.begin(), samples_.end());
}

double EmpiricalDistribution::max() const {
  HSSTA_REQUIRE(!samples_.empty(), "max of empty distribution");
  return *std::max_element(samples_.begin(), samples_.end());
}

void EmpiricalDistribution::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

const std::vector<double>& EmpiricalDistribution::sorted() const {
  ensure_sorted();
  return sorted_;
}

double EmpiricalDistribution::quantile(double q) const {
  HSSTA_REQUIRE(!samples_.empty(), "quantile of empty distribution");
  HSSTA_REQUIRE(q >= 0.0 && q <= 1.0, "quantile level must be in [0, 1]");
  ensure_sorted();
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

double EmpiricalDistribution::cdf(double x) const {
  HSSTA_REQUIRE(!samples_.empty(), "cdf of empty distribution");
  ensure_sorted();
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalDistribution::ks_distance(
    const EmpiricalDistribution& other) const {
  ensure_sorted();
  other.ensure_sorted();
  const auto& a = sorted_;
  const auto& b = other.sorted_;
  HSSTA_REQUIRE(!a.empty() && !b.empty(), "ks_distance of empty distribution");
  size_t i = 0, j = 0;
  double d = 0.0;
  while (i < a.size() && j < b.size()) {
    // Consume every sample equal to the smaller head value from both sides,
    // so tied samples produce a single joint CDF step.
    const double v = std::min(a[i], b[j]);
    while (i < a.size() && a[i] == v) ++i;
    while (j < b.size() && b[j] == v) ++j;
    const double fa = static_cast<double>(i) / static_cast<double>(a.size());
    const double fb = static_cast<double>(j) / static_cast<double>(b.size());
    d = std::max(d, std::abs(fa - fb));
  }
  return d;
}

double EmpiricalDistribution::ks_distance(
    const std::function<double(double)>& cdf_fn) const {
  ensure_sorted();
  HSSTA_REQUIRE(!sorted_.empty(), "ks_distance of empty distribution");
  double d = 0.0;
  const double n = static_cast<double>(sorted_.size());
  for (size_t i = 0; i < sorted_.size(); ++i) {
    const double f = cdf_fn(sorted_[i]);
    d = std::max(d, std::abs(static_cast<double>(i + 1) / n - f));
    d = std::max(d, std::abs(static_cast<double>(i) / n - f));
  }
  return d;
}

}  // namespace hssta::stats
