/// \file rng.hpp
/// Deterministic random number generation.
///
/// All stochastic components of the library (circuit generators, Monte Carlo
/// engines) take an explicit Rng so that every experiment is reproducible
/// from a seed printed in its output. xoshiro256++ is small, fast and has
/// no measurable bias for this use; seeding goes through splitmix64 as its
/// authors recommend.

#pragma once

#include <cstdint>

namespace hssta::stats {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit value.
  uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n); n must be > 0.
  uint64_t uniform_index(uint64_t n);

  /// Standard normal via Marsaglia polar method (deterministic across
  /// platforms, unlike std::normal_distribution).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double sigma);

  /// Derive an independent child generator (for parallel or per-module use).
  [[nodiscard]] Rng fork();

  /// Counter-based construction: the generator for work item `counter` of a
  /// stream identified by `base`. Every (base, counter) pair yields an
  /// independent, fully determined generator, so per-sample Monte Carlo
  /// draws depend only on the sample index — never on loop order, batch
  /// size or thread count.
  [[nodiscard]] static Rng from_counter(uint64_t base, uint64_t counter);

 private:
  uint64_t s_[4];
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace hssta::stats
