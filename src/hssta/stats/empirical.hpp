/// \file empirical.hpp
/// Empirical distributions for Monte Carlo results: running moments
/// (Welford), quantiles, empirical CDF evaluation and two-sample /
/// distribution-vs-curve Kolmogorov-Smirnov distances. These back the
/// accuracy comparisons in Table I and Fig. 7 of the paper.

#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace hssta::stats {

/// Numerically stable streaming mean/variance accumulator.
class Moments {
 public:
  void add(double x);

  [[nodiscard]] size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  /// Unbiased sample variance (n-1 denominator); 0 for n < 2.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// A set of scalar samples with quantile/CDF queries.
class EmpiricalDistribution {
 public:
  EmpiricalDistribution() = default;
  explicit EmpiricalDistribution(std::vector<double> samples);

  void add(double x);
  void reserve(size_t n) { samples_.reserve(n); }

  [[nodiscard]] size_t count() const { return samples_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Linear-interpolated quantile, q in [0, 1].
  [[nodiscard]] double quantile(double q) const;

  /// Empirical CDF value P{X <= x}.
  [[nodiscard]] double cdf(double x) const;

  /// Sorted copy of the samples.
  [[nodiscard]] const std::vector<double>& sorted() const;

  /// Two-sample Kolmogorov-Smirnov distance.
  [[nodiscard]] double ks_distance(const EmpiricalDistribution& other) const;

  /// KS distance against an analytic CDF.
  [[nodiscard]] double ks_distance(
      const std::function<double(double)>& cdf) const;

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

}  // namespace hssta::stats
