#include "hssta/stats/rng.hpp"

#include <cmath>

#include "hssta/util/error.hpp"

namespace hssta::stats {

namespace {

uint64_t splitmix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

uint64_t Rng::next_u64() {
  const uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

uint64_t Rng::uniform_index(uint64_t n) {
  HSSTA_REQUIRE(n > 0, "uniform_index needs n > 0");
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % n;
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * mul;
  has_spare_ = true;
  return u * mul;
}

double Rng::normal(double mean, double sigma) { return mean + sigma * normal(); }

Rng Rng::fork() { return Rng(next_u64() ^ 0xA5A5A5A5DEADBEEFull); }

Rng Rng::from_counter(uint64_t base, uint64_t counter) {
  // Finalize both words independently through splitmix64 (a bijection), so
  // distinct counters of one stream can never collide.
  uint64_t a = base;
  uint64_t b = counter ^ 0x6A09E667F3BCC909ull;
  return Rng(splitmix64(a) ^ splitmix64(b));
}

}  // namespace hssta::stats
