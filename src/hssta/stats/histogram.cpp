#include "hssta/stats/histogram.hpp"

#include "hssta/util/error.hpp"

namespace hssta::stats {

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  HSSTA_REQUIRE(bins > 0, "histogram needs at least one bin");
  HSSTA_REQUIRE(lo < hi, "histogram range must be non-empty");
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  long bin = static_cast<long>(t * static_cast<double>(counts_.size()));
  if (bin < 0) bin = 0;
  if (bin >= static_cast<long>(counts_.size()))
    bin = static_cast<long>(counts_.size()) - 1;
  ++counts_[static_cast<size_t>(bin)];
  ++total_;
}

void Histogram::add_all(const std::vector<double>& xs) {
  for (double x : xs) add(x);
}

std::vector<double> Histogram::edges() const {
  std::vector<double> e(counts_.size() + 1);
  for (size_t i = 0; i <= counts_.size(); ++i)
    e[i] = lo_ + (hi_ - lo_) * static_cast<double>(i) /
                     static_cast<double>(counts_.size());
  return e;
}

}  // namespace hssta::stats
