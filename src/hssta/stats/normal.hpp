/// \file normal.hpp
/// Standard normal pdf/cdf/quantile. These are the building blocks of the
/// statistical max (paper eqs. 6-8): the tightness probability is a Phi()
/// evaluation and Clark's moments use phi().

#pragma once

namespace hssta::stats {

/// Standard normal probability density.
[[nodiscard]] double normal_pdf(double x);

/// Standard normal cumulative distribution (via erfc, accurate in tails).
[[nodiscard]] double normal_cdf(double x);

/// Inverse standard normal CDF (Acklam's rational approximation with one
/// Halley refinement step; |error| < 1e-12 over (0, 1)).
/// Throws hssta::Error for p outside (0, 1).
[[nodiscard]] double normal_quantile(double p);

}  // namespace hssta::stats
