#include "hssta/netlist/bench_io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "hssta/util/error.hpp"
#include "hssta/util/strings.hpp"

namespace hssta::netlist {

namespace {

using library::CellLibrary;
using library::CellType;
using library::GateFunc;

struct Parser {
  const CellLibrary& lib;
  Netlist nl;
  std::string origin;  ///< file path (or "<bench>") for error locations
  // det-ok: name -> id lookup only; the netlist is built in file order and
  // this map is never iterated.
  std::unordered_map<std::string, NetId> nets;
  /// OUTPUT declarations with the line they appeared on, so finish() can
  /// locate a reference to a net that never materializes.
  std::vector<std::pair<std::string, int>> output_names;
  int line_no = 0;
  int synth_counter = 0;

  Parser(const CellLibrary& l, std::string name, std::string org)
      : lib(l), nl(std::move(name)), origin(std::move(org)) {}

  [[noreturn]] void fail_at(int line, const std::string& msg) const {
    std::ostringstream os;
    os << "bench parse error at " << origin << ':' << line << ": " << msg;
    throw Error(os.str());
  }

  [[noreturn]] void fail(const std::string& msg) const {
    fail_at(line_no, msg);
  }

  NetId net(const std::string& name) {
    auto it = nets.find(name);
    if (it != nets.end()) return it->second;
    const NetId id = nl.add_net(name);
    nets.emplace(name, id);
    return id;
  }

  NetId fresh_net(const std::string& base) {
    // Synthesized intermediate net for wide-gate decomposition.
    std::string name = base + "$t" + std::to_string(synth_counter++);
    while (nets.count(name))
      name = base + "$t" + std::to_string(synth_counter++);
    return net(name);
  }

  GateFunc func_from_name(const std::string& lower) const {
    if (lower == "and") return GateFunc::kAnd;
    if (lower == "nand") return GateFunc::kNand;
    if (lower == "or") return GateFunc::kOr;
    if (lower == "nor") return GateFunc::kNor;
    if (lower == "xor") return GateFunc::kXor;
    if (lower == "xnor") return GateFunc::kXnor;
    if (lower == "not" || lower == "inv") return GateFunc::kNot;
    if (lower == "buf" || lower == "buff") return GateFunc::kBuf;
    fail("unsupported bench gate function: " + lower);
  }

  const CellType* exact_cell(GateFunc func, size_t arity) const {
    const CellType* c = lib.find_widest(func, arity);
    return (c && c->num_inputs == arity) ? c : nullptr;
  }

  void add_cell_gate(const std::string& name, const CellType* type,
                     std::vector<NetId> fanins, NetId out) {
    nl.add_gate(name, type, std::move(fanins), out);
  }

  /// Reduce `ins` with `reduce_func` cells until at most `final_width`
  /// nets remain (tree construction for wide gates).
  std::vector<NetId> reduce_tree(const std::string& base, GateFunc reduce_func,
                                 std::vector<NetId> ins, size_t final_width) {
    while (ins.size() > final_width) {
      const CellType* cell = lib.find_widest(
          reduce_func, std::min(ins.size() - final_width + 1, ins.size()));
      if (!cell || cell->num_inputs < 2)
        fail(std::string("library lacks a 2+ input ") +
             library::gate_func_name(reduce_func) + " cell for decomposition");
      const size_t take = std::min(cell->num_inputs, ins.size());
      const CellType* exact = exact_cell(reduce_func, take);
      HSSTA_ASSERT(exact != nullptr || take == cell->num_inputs,
                   "widest cell must match its own arity");
      const CellType* use = exact ? exact : cell;
      std::vector<NetId> group(ins.begin(), ins.begin() + take);
      ins.erase(ins.begin(), ins.begin() + take);
      const NetId out = fresh_net(base);
      add_cell_gate(nl.net_name(out), use, std::move(group), out);
      ins.push_back(out);
    }
    return ins;
  }

  void add_logic(const std::string& out_name, GateFunc func,
                 std::vector<NetId> ins) {
    const NetId out = net(out_name);
    if (ins.empty()) fail("gate with no inputs: " + out_name);

    // Single-input wide functions degenerate to BUF/NOT.
    if (ins.size() == 1 && func != GateFunc::kBuf && func != GateFunc::kNot) {
      const bool inverting = (func == GateFunc::kNand ||
                              func == GateFunc::kNor ||
                              func == GateFunc::kXnor);
      func = inverting ? GateFunc::kNot : GateFunc::kBuf;
    }

    if (const CellType* cell = exact_cell(func, ins.size())) {
      add_cell_gate(out_name, cell, std::move(ins), out);
      return;
    }

    // Decompose. Inverting functions reduce with their non-inverting dual
    // and invert only at the final stage, preserving logic exactly.
    GateFunc reduce_func = func;
    switch (func) {
      case GateFunc::kNand: reduce_func = GateFunc::kAnd; break;
      case GateFunc::kNor: reduce_func = GateFunc::kOr; break;
      case GateFunc::kXnor: reduce_func = GateFunc::kXor; break;
      default: break;
    }
    // Find the widest final cell of the requested function.
    const CellType* final_cell = lib.find_widest(func, ins.size());
    if (!final_cell) {
      // No cell of the function at all (e.g. XNOR absent): reduce fully with
      // the dual and invert.
      const CellType* inv = lib.find_widest(GateFunc::kNot, 1);
      if (!inv) fail("library lacks an inverter for decomposition");
      std::vector<NetId> rest = reduce_tree(out_name, reduce_func,
                                            std::move(ins), 1);
      add_cell_gate(out_name, inv, {rest[0]}, out);
      return;
    }
    std::vector<NetId> rest = reduce_tree(out_name, reduce_func, std::move(ins),
                                          final_cell->num_inputs);
    const CellType* last = exact_cell(func, rest.size());
    if (!last) fail("internal: no exact cell after reduction");
    add_cell_gate(out_name, last, std::move(rest), out);
  }

  void parse_line(std::string_view raw) {
    // Strip comments and whitespace.
    const size_t hash = raw.find('#');
    if (hash != std::string_view::npos) raw = raw.substr(0, hash);
    const std::string line{trim(raw)};
    if (line.empty()) return;

    auto paren_arg = [&](std::string_view s) -> std::string {
      const size_t open = s.find('(');
      const size_t close = s.rfind(')');
      if (open == std::string_view::npos || close == std::string_view::npos ||
          close < open)
        fail("malformed parenthesized expression: " + line);
      return std::string(trim(s.substr(open + 1, close - open - 1)));
    };

    const std::string lower = to_lower(line);
    if (starts_with(lower, "input")) {
      // Route through the name map: the net may already have been (or may
      // later be) referenced by a gate line.
      nl.mark_primary_input(net(paren_arg(line)));
      return;
    }
    if (starts_with(lower, "output")) {
      output_names.emplace_back(paren_arg(line), line_no);
      return;
    }

    const size_t eq = line.find('=');
    if (eq == std::string::npos) fail("expected assignment: " + line);
    const std::string out_name{trim(std::string_view(line).substr(0, eq))};
    const std::string rhs{trim(std::string_view(line).substr(eq + 1))};
    const size_t open = rhs.find('(');
    if (open == std::string::npos) fail("expected FUNC(...): " + rhs);
    const GateFunc func =
        func_from_name(to_lower(trim(std::string_view(rhs).substr(0, open))));

    const size_t close = rhs.rfind(')');
    if (close == std::string::npos || close < open)
      fail("unbalanced parentheses: " + rhs);
    std::vector<NetId> ins;
    for (const std::string& tok :
         split(rhs.substr(open + 1, close - open - 1), ',')) {
      const std::string name{trim(tok)};
      if (name.empty()) fail("empty operand in: " + rhs);
      ins.push_back(net(name));
    }
    add_logic(out_name, func, std::move(ins));
  }

  Netlist finish(bool validate) {
    for (const auto& [name, line] : output_names) {
      auto it = nets.find(name);
      if (it == nets.end())
        fail_at(line, "OUTPUT references unknown net: " + name);
      nl.mark_primary_output(it->second);
    }
    if (validate) nl.validate();
    return std::move(nl);
  }
};

}  // namespace

Netlist read_bench(std::istream& in, const CellLibrary& lib, std::string name,
                   std::string origin, bool validate) {
  Parser p(lib, std::move(name), std::move(origin));
  std::string line;
  while (std::getline(in, line)) {
    ++p.line_no;
    p.parse_line(line);
  }
  return p.finish(validate);
}

Netlist read_bench_string(const std::string& text, const CellLibrary& lib,
                          std::string name, bool validate) {
  std::istringstream in(text);
  return read_bench(in, lib, std::move(name), "<bench>", validate);
}

Netlist read_bench_file(const std::string& path, const CellLibrary& lib,
                        bool validate) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open bench file: " + path);
  // Derive the circuit name from the file stem.
  std::string name = path;
  const size_t slash = name.find_last_of("/\\");
  if (slash != std::string::npos) name = name.substr(slash + 1);
  const size_t dot = name.find_last_of('.');
  if (dot != std::string::npos) name = name.substr(0, dot);
  return read_bench(in, lib, name, path, validate);
}

void write_bench(std::ostream& out, const Netlist& nl) {
  out << "# " << nl.name() << " — written by hssta\n";
  for (NetId n : nl.primary_inputs())
    out << "INPUT(" << nl.net_name(n) << ")\n";
  for (NetId n : nl.primary_outputs())
    out << "OUTPUT(" << nl.net_name(n) << ")\n";
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const Gate& gate = nl.gate(g);
    out << nl.net_name(gate.output) << " = "
        << library::gate_func_name(gate.type->func) << '(';
    for (size_t i = 0; i < gate.fanins.size(); ++i) {
      if (i) out << ", ";
      out << nl.net_name(gate.fanins[i]);
    }
    out << ")\n";
  }
}

std::string write_bench_string(const Netlist& nl) {
  std::ostringstream os;
  write_bench(os, nl);
  return os.str();
}

}  // namespace hssta::netlist
