#include "hssta/netlist/bench_io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "hssta/frontend/netlist_builder.hpp"
#include "hssta/util/error.hpp"
#include "hssta/util/strings.hpp"

namespace hssta::netlist {

namespace {

using library::CellLibrary;
using library::GateFunc;

/// Grammar handling for the .bench format; the structural work (name map,
/// wide-gate decomposition, register records) lives in the shared
/// frontend::NetlistBuilder.
struct Parser {
  frontend::NetlistBuilder b;
  std::string origin;  ///< file path (or "<bench>") for error locations
  /// OUTPUT declarations with the line they appeared on, so finish() can
  /// locate a reference to a net that never materializes.
  std::vector<std::pair<std::string, int>> output_names;
  int line_no = 0;

  Parser(const CellLibrary& l, std::string name, std::string org)
      : b(l, std::move(name)), origin(std::move(org)) {}

  [[noreturn]] void fail_at(int line, const std::string& msg) const {
    std::ostringstream os;
    os << "bench parse error at " << origin << ':' << line << ": " << msg;
    throw Error(os.str());
  }

  [[noreturn]] void fail(const std::string& msg) const {
    fail_at(line_no, msg);
  }

  GateFunc func_from_name(const std::string& lower) const {
    if (lower == "and") return GateFunc::kAnd;
    if (lower == "nand") return GateFunc::kNand;
    if (lower == "or") return GateFunc::kOr;
    if (lower == "nor") return GateFunc::kNor;
    if (lower == "xor") return GateFunc::kXor;
    if (lower == "xnor") return GateFunc::kXnor;
    if (lower == "not" || lower == "inv") return GateFunc::kNot;
    if (lower == "buf" || lower == "buff") return GateFunc::kBuf;
    fail("unsupported bench gate function: " + lower);
  }

  void parse_line(std::string_view raw) {
    // Strip comments and whitespace.
    const size_t hash = raw.find('#');
    if (hash != std::string_view::npos) raw = raw.substr(0, hash);
    const std::string line{trim(raw)};
    if (line.empty()) return;

    auto paren_arg = [&](std::string_view s) -> std::string {
      const size_t open = s.find('(');
      const size_t close = s.rfind(')');
      if (open == std::string_view::npos || close == std::string_view::npos ||
          close < open)
        fail("malformed parenthesized expression: " + line);
      return std::string(trim(s.substr(open + 1, close - open - 1)));
    };

    const std::string lower = to_lower(line);
    if (starts_with(lower, "input")) {
      // Route through the name map: the net may already have been (or may
      // later be) referenced by a gate line.
      try {
        b.mark_input(paren_arg(line));
      } catch (const Error& e) {
        fail(e.what());
      }
      return;
    }
    if (starts_with(lower, "output")) {
      output_names.emplace_back(paren_arg(line), line_no);
      return;
    }

    const size_t eq = line.find('=');
    if (eq == std::string::npos) fail("expected assignment: " + line);
    const std::string out_name{trim(std::string_view(line).substr(0, eq))};
    const std::string rhs{trim(std::string_view(line).substr(eq + 1))};
    const size_t open = rhs.find('(');
    if (open == std::string::npos) fail("expected FUNC(...): " + rhs);
    const std::string func_name =
        to_lower(trim(std::string_view(rhs).substr(0, open)));

    const size_t close = rhs.rfind(')');
    if (close == std::string::npos || close < open)
      fail("unbalanced parentheses: " + rhs);
    std::vector<std::string> in_names;
    for (const std::string& tok :
         split(rhs.substr(open + 1, close - open - 1), ',')) {
      const std::string name{trim(tok)};
      if (name.empty()) fail("empty operand in: " + rhs);
      in_names.push_back(name);
    }

    // ISCAS89 registers: `Q = DFF(D)` becomes a register record, not a
    // gate. The edge type/clock are implicit in the format (single global
    // clock), so the record is unclocked.
    if (func_name == "dff") {
      if (in_names.size() != 1)
        fail("DFF takes exactly one input: " + rhs);
      try {
        b.add_register(in_names[0], out_name, /*clock=*/"", /*init=*/3);
      } catch (const Error& e) {
        fail(e.what());
      }
      return;
    }

    const GateFunc func = func_from_name(func_name);
    std::vector<NetId> ins;
    ins.reserve(in_names.size());
    for (const std::string& name : in_names) ins.push_back(b.net(name));
    try {
      b.add_logic(out_name, func, std::move(ins));
    } catch (const Error& e) {
      fail(e.what());
    }
  }

  Netlist finish(bool validate) {
    for (const auto& [name, line] : output_names) {
      if (b.find_net(name) == kNoNet)
        fail_at(line, "OUTPUT references unknown net: " + name);
      b.mark_output(name);
    }
    return b.finish(validate);
  }
};

}  // namespace

Netlist read_bench(std::istream& in, const CellLibrary& lib, std::string name,
                   std::string origin, bool validate) {
  Parser p(lib, std::move(name), std::move(origin));
  std::string line;
  while (std::getline(in, line)) {
    ++p.line_no;
    p.parse_line(line);
  }
  return p.finish(validate);
}

Netlist read_bench_string(const std::string& text, const CellLibrary& lib,
                          std::string name, bool validate) {
  std::istringstream in(text);
  return read_bench(in, lib, std::move(name), "<bench>", validate);
}

Netlist read_bench_file(const std::string& path, const CellLibrary& lib,
                        bool validate) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open bench file: " + path);
  // Derive the circuit name from the file stem.
  std::string name = path;
  const size_t slash = name.find_last_of("/\\");
  if (slash != std::string::npos) name = name.substr(slash + 1);
  const size_t dot = name.find_last_of('.');
  if (dot != std::string::npos) name = name.substr(0, dot);
  return read_bench(in, lib, name, path, validate);
}

void write_bench(std::ostream& out, const Netlist& nl) {
  out << "# " << nl.name() << " — written by hssta\n";
  for (NetId n : nl.primary_inputs())
    out << "INPUT(" << nl.net_name(n) << ")\n";
  for (NetId n : nl.primary_outputs())
    out << "OUTPUT(" << nl.net_name(n) << ")\n";
  for (const Register& r : nl.registers())
    out << nl.net_name(r.data_out) << " = DFF(" << nl.net_name(r.data_in)
        << ")\n";
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const Gate& gate = nl.gate(g);
    out << nl.net_name(gate.output) << " = "
        << library::gate_func_name(gate.type->func) << '(';
    for (size_t i = 0; i < gate.fanins.size(); ++i) {
      if (i) out << ", ";
      out << nl.net_name(gate.fanins[i]);
    }
    out << ")\n";
  }
}

std::string write_bench_string(const Netlist& nl) {
  std::ostringstream os;
  write_bench(os, nl);
  return os.str();
}

}  // namespace hssta::netlist
