/// \file iscas.hpp
/// Synthetic ISCAS85 suite used by the paper's experiments (Table I, Figs.
/// 6-7). The real netlists are not redistributable here, so each circuit is
/// synthesized to its published statistics; c6288 is generated structurally
/// as the 16x16 carry-save array multiplier it actually is (Hansen et al.,
/// IEEE D&T 1999 — the paper's own reference [21]). When the genuine .bench
/// files are available, load them with read_bench_file() instead; every
/// downstream API accepts either source.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "hssta/library/cell_library.hpp"
#include "hssta/netlist/netlist.hpp"

namespace hssta::netlist {

/// Published statistics of one ISCAS85 circuit. `pins` is the total gate
/// input pin count, which equals the timing-graph edge count Eo in the
/// paper's Table I; `gates` equals Vo - inputs there.
struct IscasProfile {
  std::string name;
  size_t inputs = 0;
  size_t outputs = 0;
  size_t gates = 0;
  size_t pins = 0;
  size_t depth = 0;  ///< approximate logic depth (levels)
};

/// All ten ISCAS85 profiles in the paper's Table I order.
[[nodiscard]] const std::vector<IscasProfile>& iscas85_profiles();

/// Profile by name ("c432" ... "c7552"); throws if unknown.
[[nodiscard]] const IscasProfile& iscas85_profile(std::string_view name);

/// Generate the synthetic equivalent of one ISCAS85 circuit.
/// Deterministic: the same name/seed yields the same netlist.
[[nodiscard]] Netlist make_iscas85(std::string_view name,
                                   const library::CellLibrary& lib,
                                   uint64_t seed = 2009);

}  // namespace hssta::netlist
