/// \file bench_io.hpp
/// Reader/writer for the ISCAS85/ISCAS89 `.bench` netlist format:
///
///   # comment
///   INPUT(G1)
///   OUTPUT(G17)
///   G10 = NAND(G1, G3)
///   G23 = DFF(G10)        # ISCAS89 sequential extension
///
/// The reader maps functions onto the cell library; gates wider than the
/// widest library cell of that function are decomposed into logically
/// equivalent trees (e.g. an 8-input NAND becomes an AND tree plus INV),
/// so real ISCAS85 files load against the default 4-input-max library.
/// `DFF(...)` lines become explicit Netlist register records (unclocked,
/// init unknown — the format has a single implicit clock), so ISCAS89
/// files like s27/s344/s1196 load as first-class sequential circuits.

#pragma once

#include <iosfwd>
#include <string>

#include "hssta/library/cell_library.hpp"
#include "hssta/netlist/netlist.hpp"

namespace hssta::netlist {

/// Parse `.bench` text. Throws hssta::Error as "bench parse error at
/// <origin>:<line>: ..." on any syntax or structural problem (`origin` is
/// the file path when reading from disk). With `validate` false the
/// structural pass (Netlist::validate) is skipped so the static checker
/// (hssta::check) can lint malformed-but-parseable netlists instead of
/// dying on the first defect; syntax errors still throw.
[[nodiscard]] Netlist read_bench(std::istream& in,
                                 const library::CellLibrary& lib,
                                 std::string name = "bench",
                                 std::string origin = "<bench>",
                                 bool validate = true);

/// Parse from a string (convenience for tests).
[[nodiscard]] Netlist read_bench_string(const std::string& text,
                                        const library::CellLibrary& lib,
                                        std::string name = "bench",
                                        bool validate = true);

/// Parse from a file path; errors name the path and line.
[[nodiscard]] Netlist read_bench_file(const std::string& path,
                                      const library::CellLibrary& lib,
                                      bool validate = true);

/// Write `.bench` text. Gates are emitted by their library function name;
/// the result re-reads into an equivalent netlist.
void write_bench(std::ostream& out, const Netlist& nl);

/// Write to a string (convenience for tests).
[[nodiscard]] std::string write_bench_string(const Netlist& nl);

}  // namespace hssta::netlist
