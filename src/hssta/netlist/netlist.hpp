/// \file netlist.hpp
/// Gate-level netlist: the input representation for timing graph
/// construction, Monte Carlo reference simulation and functional (boolean)
/// verification of generated circuits.
///
/// Conventions: every net is driven either by a primary input, by exactly
/// one gate output, or by exactly one register output. Primary outputs are
/// *marked nets* (they may also have internal fanout), matching the vertex
/// accounting of the paper's Table I (Vo = #PI + #gates).
///
/// Sequential circuits are first-class: registers (`.latch` in BLIF, `DFF`
/// in ISCAS89 `.bench`) are explicit records, not gates. A register's
/// output net behaves as a launch point (a source, like a primary input)
/// and its data input net as a capture point; the combinational core
/// between those boundaries stays a DAG, so topological_order(), depth()
/// and validate() need no cycle-breaking special cases.

#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "hssta/library/cell.hpp"

namespace hssta::netlist {

using NetId = uint32_t;
using GateId = uint32_t;
using RegId = uint32_t;
inline constexpr GateId kNoGate = std::numeric_limits<GateId>::max();
inline constexpr RegId kNoReg = std::numeric_limits<RegId>::max();
inline constexpr NetId kNoNet = std::numeric_limits<NetId>::max();

/// One gate instance. Fanins are nets in pin order; the output is a net
/// driven exclusively by this gate.
struct Gate {
  std::string name;
  const library::CellType* type = nullptr;
  std::vector<NetId> fanins;
  NetId output = 0;
};

/// One register (BLIF `.latch`, ISCAS89 `DFF`). The register drives
/// `data_out` exclusively (a launch point) and captures `data_in` at the
/// clock boundary. `clock` is kNoNet for unclocked styles (.bench DFFs, a
/// .latch without a control net); `init` uses the BLIF encoding — 0, 1,
/// 2 (don't care) or 3 (unknown, the default).
struct Register {
  std::string name;
  NetId data_in = 0;
  NetId data_out = 0;
  NetId clock = kNoNet;
  int init = 3;
};

class Netlist {
 public:
  explicit Netlist(std::string name = "top") : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  /// --- construction ---------------------------------------------------

  /// Add an undriven net; it must later be driven by a gate or declared PI.
  NetId add_net(std::string name);

  /// Declare an existing net as primary input (must be undriven).
  void mark_primary_input(NetId net);

  /// Convenience: add_net + mark_primary_input.
  NetId add_primary_input(std::string name);

  /// Declare a net as primary output (any driven net or PI may be one).
  void mark_primary_output(NetId net);

  /// Add a gate driving `output`; the net must not already have a driver.
  GateId add_gate(std::string name, const library::CellType* type,
                  std::vector<NetId> fanins, NetId output);

  /// Add a register driving `data_out` (which must be undriven and not a
  /// primary input). `clock` is kNoNet for unclocked registers; `init`
  /// must be 0..3 (BLIF encoding).
  RegId add_register(std::string name, NetId data_in, NetId data_out,
                     NetId clock = kNoNet, int init = 3);

  /// --- access -----------------------------------------------------------

  [[nodiscard]] size_t num_nets() const { return net_names_.size(); }
  [[nodiscard]] size_t num_gates() const { return gates_.size(); }
  [[nodiscard]] const Gate& gate(GateId g) const { return gates_.at(g); }
  [[nodiscard]] Gate& gate(GateId g) { return gates_.at(g); }
  [[nodiscard]] const std::string& net_name(NetId n) const {
    return net_names_.at(n);
  }
  /// Driving gate of a net, or kNoGate for primary inputs and register
  /// outputs.
  [[nodiscard]] GateId driver(NetId n) const { return net_driver_.at(n); }
  [[nodiscard]] size_t num_registers() const { return registers_.size(); }
  [[nodiscard]] const std::vector<Register>& registers() const {
    return registers_;
  }
  [[nodiscard]] const Register& reg(RegId r) const { return registers_.at(r); }
  /// Driving register of a net, or kNoReg.
  [[nodiscard]] RegId register_driver(NetId n) const {
    return net_reg_driver_.at(n);
  }
  [[nodiscard]] bool is_register_output(NetId n) const {
    return net_reg_driver_.at(n) != kNoReg;
  }
  [[nodiscard]] bool is_sequential() const { return !registers_.empty(); }
  [[nodiscard]] const std::vector<NetId>& primary_inputs() const {
    return primary_inputs_;
  }
  [[nodiscard]] const std::vector<NetId>& primary_outputs() const {
    return primary_outputs_;
  }
  [[nodiscard]] bool is_primary_input(NetId n) const;
  [[nodiscard]] bool is_primary_output(NetId n) const;

  /// Net id by name; throws if absent.
  [[nodiscard]] NetId net_by_name(const std::string& name) const;

  /// Gates consuming a net (computed on demand, cached).
  [[nodiscard]] const std::vector<std::vector<GateId>>& net_sinks() const;

  /// --- analysis -----------------------------------------------------------

  /// Gates in topological order (fanins before the gate).
  /// Throws hssta::Error if the netlist contains a combinational cycle.
  [[nodiscard]] std::vector<GateId> topological_order() const;

  /// Total number of gate input pins (the paper's Eo).
  [[nodiscard]] size_t num_pins() const;

  /// Longest path length in gate count (levelized depth).
  [[nodiscard]] size_t depth() const;

  /// Structural checks: every net driven or PI, every gate pin connected,
  /// arities match cell types, POs exist. Throws on violation.
  void validate() const;

  /// Boolean simulation: values for all nets given primary input values
  /// (in primary_inputs() order). Combinational netlists only; sequential
  /// netlists must use the register-state overload.
  [[nodiscard]] std::vector<bool> simulate(
      const std::vector<bool>& pi_values) const;

  /// One-cycle simulation of a sequential netlist: register outputs take
  /// `register_state` (in registers() order), then the combinational core
  /// evaluates. The next state is readable at each register's data_in net.
  [[nodiscard]] std::vector<bool> simulate(
      const std::vector<bool>& pi_values,
      const std::vector<bool>& register_state) const;

 private:
  std::string name_;
  std::vector<std::string> net_names_;
  std::vector<GateId> net_driver_;
  std::vector<RegId> net_reg_driver_;
  std::vector<uint8_t> net_is_pi_;
  std::vector<uint8_t> net_is_po_;
  std::vector<NetId> primary_inputs_;
  std::vector<NetId> primary_outputs_;
  std::vector<Gate> gates_;
  std::vector<Register> registers_;
  mutable std::vector<std::vector<GateId>> sinks_cache_;
  mutable bool sinks_valid_ = false;
};

/// Stable 64-bit content fingerprint of a netlist: name, every net (name,
/// PI/PO marks), every gate (name, cell type name, fanins, output) and the
/// PI/PO declaration orders. Register records are appended only when
/// present, so combinational netlists fingerprint exactly as before the
/// sequential extension (existing model-cache entries stay valid). Two
/// netlists fingerprint equal iff they are structurally identical against
/// same-named cell types — the netlist half of the model cache key (cell
/// parameters are covered separately by library::fingerprint).
[[nodiscard]] uint64_t fingerprint(const Netlist& nl);

}  // namespace hssta::netlist
