#include "hssta/netlist/generate.hpp"

#include <algorithm>
#include <optional>

#include "hssta/stats/rng.hpp"
#include "hssta/util/error.hpp"

namespace hssta::netlist {

namespace {

using library::CellLibrary;
using library::CellType;
using library::GateFunc;
using stats::Rng;

/// Weighted choice of a cell type for a given arity; mixes inverting,
/// non-inverting and parity cells roughly like mapped ISCAS85 logic.
const CellType* pick_cell(const CellLibrary& lib, size_t arity, Rng& rng) {
  const double u = rng.uniform();
  switch (arity) {
    case 1:
      return &lib.get(u < 0.75 ? "INV" : "BUF");
    case 2:
      if (u < 0.28) return &lib.get("NAND2");
      if (u < 0.50) return &lib.get("NOR2");
      if (u < 0.66) return &lib.get("AND2");
      if (u < 0.80) return &lib.get("OR2");
      if (u < 0.92) return &lib.get("XOR2");
      return &lib.get("XNOR2");
    case 3:
      if (u < 0.40) return &lib.get("NAND3");
      if (u < 0.70) return &lib.get("NOR3");
      if (u < 0.85) return &lib.get("AND3");
      return &lib.get("OR3");
    case 4:
      if (u < 0.40) return &lib.get("NAND4");
      if (u < 0.70) return &lib.get("NOR4");
      if (u < 0.85) return &lib.get("AND4");
      return &lib.get("OR4");
    default:
      throw Error("random DAG arity out of range");
  }
}

bool contains(const std::vector<NetId>& nets, NetId x) {
  return std::find(nets.begin(), nets.end(), x) != nets.end();
}

/// Core DAG construction over an explicit source frontier: builds
/// spec.num_gates gates (nets/gates named under `prefix`) drawing fanins
/// from `sources` and from each other, and returns the tile's output nets
/// (spec.num_outputs of them, barring counted repairs). Every source is
/// consumed at least once; spec.num_inputs is ignored in favour of
/// sources.size(). make_random_dag runs one tile over the primary inputs;
/// make_stacked_dag chains tiles through their output frontiers.
std::vector<NetId> build_dag_tile(Netlist& nl, const RandomDagSpec& spec,
                                  const std::vector<NetId>& sources,
                                  const std::string& prefix,
                                  const CellLibrary& lib, Rng& rng,
                                  RandomDagStats* stats) {
  HSSTA_REQUIRE(!sources.empty(), "need at least one source net");
  HSSTA_REQUIRE(spec.num_outputs >= 1, "need at least one output");
  HSSTA_REQUIRE(spec.depth >= 1 && spec.num_gates >= spec.depth,
                "need at least one gate per level");
  HSSTA_REQUIRE(spec.num_outputs <= spec.num_gates,
                "outputs are gate nets; too many requested");
  HSSTA_REQUIRE(spec.num_pins >= spec.num_gates &&
                    spec.num_pins <= 4 * spec.num_gates,
                "pin target must lie in [gates, 4*gates]");

  const std::vector<NetId>& pis = sources;

  // Distribute gates over levels: one per level guaranteed, the rest
  // spread uniformly at random. The last level is capped at num_outputs:
  // its gates are necessarily fanout-free (fanins only come from lower
  // levels), so anything beyond the PO budget could never be absorbed.
  std::vector<size_t> gates_at_level(spec.depth, 1);
  const size_t last_level_cap =
      spec.depth > 1 ? std::max<size_t>(1, spec.num_outputs) : spec.num_gates;
  for (size_t extra = spec.num_gates - spec.depth; extra > 0; --extra) {
    size_t lv = rng.uniform_index(spec.depth);
    if (lv + 1 == spec.depth && gates_at_level[lv] >= last_level_cap &&
        spec.depth > 1)
      lv = rng.uniform_index(spec.depth - 1);
    ++gates_at_level[lv];
  }

  // Create gate skeletons level by level. Each gate has exactly one "chain"
  // fanin from the previous level (or a PI at level 0), which pins the
  // realized depth to spec.depth and keeps everything reachable from PIs.
  struct Proto {
    std::vector<NetId> fanins;
    size_t level = 0;
    NetId output = 0;
  };
  std::vector<Proto> protos(spec.num_gates);
  std::vector<std::vector<size_t>> by_level(spec.depth);
  std::vector<size_t> net_uses(nl.num_nets() + spec.num_gates, 0);

  size_t unused_pi_cursor = 0;  // PIs taken round-robin until all are used
  size_t idx = 0;
  for (size_t lv = 0; lv < spec.depth; ++lv) {
    for (size_t k = 0; k < gates_at_level[lv]; ++k, ++idx) {
      Proto& p = protos[idx];
      p.level = lv;
      p.output = nl.add_net(prefix + "n" + std::to_string(idx));
      NetId chain;
      if (lv == 0) {
        chain = pis[unused_pi_cursor % pis.size()];
        ++unused_pi_cursor;
      } else {
        const auto& prev = by_level[lv - 1];
        chain = protos[prev[rng.uniform_index(prev.size())]].output;
      }
      p.fanins.push_back(chain);
      ++net_uses[chain];
      by_level[lv].push_back(idx);
    }
  }

  // Pool of PIs not yet consumed by the level-0 round-robin.
  std::vector<NetId> unused_pis;
  for (size_t i = unused_pi_cursor; i < pis.size(); ++i)
    unused_pis.push_back(pis[i]);

  // Pick a random already-created net strictly below `level`, with a
  // geometric bias towards nearby levels (spatial/logical locality).
  auto pick_source = [&](size_t level) -> NetId {
    if (level == 0 || rng.uniform() < 0.10)
      return pis[rng.uniform_index(pis.size())];
    size_t back = 1;
    while (back < level && rng.uniform() < 0.55) ++back;
    const size_t lv = level - back;
    const auto& cands = by_level[lv];
    return protos[cands[rng.uniform_index(cands.size())]].output;
  };

  // Distribute the remaining pin budget as extra fanins. Sources prefer
  // (1) unused PIs, then (2) currently fanout-free gate outputs, so the
  // generator converges to full connectivity without post-repair.
  size_t pins_left = spec.num_pins - spec.num_gates;
  // Gates eligible for more pins, per level bucket above 0 gates.
  auto add_extra_pin = [&]() -> bool {
    for (int attempt = 0; attempt < 64; ++attempt) {
      const size_t g = rng.uniform_index(spec.num_gates);
      Proto& p = protos[g];
      if (p.fanins.size() >= 4) continue;
      NetId src;
      bool src_is_unused_pi = false;
      if (!unused_pis.empty()) {
        src = unused_pis.back();  // popped only once actually consumed
        src_is_unused_pi = true;
      } else {
        // Look for a dangling earlier gate first (cheap scan bounded by a
        // few tries), else any earlier source.
        std::optional<NetId> dangling;
        for (int t = 0; t < 8 && !dangling; ++t) {
          if (p.level == 0) break;
          const size_t lv = rng.uniform_index(p.level);
          const auto& cands = by_level[lv];
          const NetId out = protos[cands[rng.uniform_index(cands.size())]].output;
          if (net_uses[out] == 0) dangling = out;
        }
        src = dangling ? *dangling : pick_source(p.level);
      }
      // Never place the same net on two pins of one gate.
      if (contains(p.fanins, src)) continue;
      if (src_is_unused_pi) unused_pis.pop_back();
      p.fanins.push_back(src);
      ++net_uses[src];
      return true;
    }
    return false;
  };
  while (pins_left > 0 && add_extra_pin()) --pins_left;

  // The random pass gives up after bounded attempts; place whatever budget
  // is left deterministically — scan gates in index order and give each
  // one fanins from distinct sources it does not already consume. Only a
  // structurally saturated spec leaves a (counted) shortfall.
  if (pins_left > 0) {
    auto try_add = [&](Proto& p, NetId src) -> bool {
      if (contains(p.fanins, src)) return false;
      p.fanins.push_back(src);
      ++net_uses[src];
      --pins_left;
      return true;
    };
    for (size_t g = 0; g < spec.num_gates && pins_left > 0; ++g) {
      Proto& p = protos[g];
      while (p.fanins.size() < 4 && pins_left > 0) {
        bool added = false;
        // Unused sources first: they must be consumed eventually anyway.
        for (size_t u = 0; u < unused_pis.size() && !added; ++u) {
          if (try_add(p, unused_pis[u])) {
            unused_pis.erase(unused_pis.begin() + ptrdiff_t(u));
            added = true;
          }
        }
        for (size_t s = 0; s < pis.size() && !added; ++s)
          added = try_add(p, pis[s]);
        for (size_t lv = 0; lv < p.level && !added; ++lv)
          for (size_t c : by_level[lv])
            if (try_add(p, protos[c].output)) {
              added = true;
              break;
            }
        if (!added) break;  // gate saturated on distinct sources
      }
    }
    if (stats) stats->pin_shortfall += pins_left;
  }

  // Any source still unused: swap it into a non-chain fanin whose current
  // source keeps at least one other use (pin count unchanged) — random
  // probes first, then a deterministic sweep so nothing is left to chance.
  for (NetId pi : unused_pis) {
    bool placed = false;
    auto try_swap = [&](Proto& p) -> bool {
      if (contains(p.fanins, pi)) return false;
      for (size_t f = 1; f < p.fanins.size(); ++f) {
        if (net_uses[p.fanins[f]] < 2) continue;
        --net_uses[p.fanins[f]];
        p.fanins[f] = pi;
        ++net_uses[pi];
        return true;
      }
      return false;
    };
    for (int attempt = 0; attempt < 256 && !placed; ++attempt)
      placed = try_swap(protos[rng.uniform_index(spec.num_gates)]);
    for (size_t g = 0; g < spec.num_gates && !placed; ++g)
      placed = try_swap(protos[g]);
    // Last resort: an extra pin on any gate with arity headroom (budget
    // overshoot, counted).
    for (size_t g = 0; g < spec.num_gates && !placed; ++g) {
      Proto& p = protos[g];
      if (p.fanins.size() < 4 && !contains(p.fanins, pi)) {
        p.fanins.push_back(pi);
        ++net_uses[pi];
        if (stats) ++stats->pin_overshoot;
        placed = true;
      }
    }
    HSSTA_ASSERT(placed, "could not connect a primary input");
  }

  // Primary outputs: fanout-free gate outputs, deepest first. Excess
  // dangling outputs are swapped into deeper gates (pin-neutral); missing
  // outputs are filled with the deepest non-dangling nets.
  std::vector<size_t> dangling;
  for (size_t g = 0; g < spec.num_gates; ++g)
    if (net_uses[protos[g].output] == 0) dangling.push_back(g);
  std::sort(dangling.begin(), dangling.end(), [&](size_t a, size_t b) {
    return protos[a].level > protos[b].level;
  });

  std::vector<NetId> pos;
  for (size_t i = 0; i < dangling.size() && pos.size() < spec.num_outputs; ++i)
    pos.push_back(protos[dangling[i]].output);

  for (size_t i = spec.num_outputs; i < dangling.size(); ++i) {
    Proto& d = protos[dangling[i]];
    bool placed = false;
    auto try_swap = [&](Proto& p) -> bool {
      if (p.level <= d.level || contains(p.fanins, d.output)) return false;
      for (size_t f = 1; f < p.fanins.size(); ++f) {
        if (net_uses[p.fanins[f]] < 2) continue;
        --net_uses[p.fanins[f]];
        p.fanins[f] = d.output;
        ++net_uses[d.output];
        return true;
      }
      return false;
    };
    for (int attempt = 0; attempt < 256 && !placed; ++attempt)
      placed = try_swap(protos[rng.uniform_index(spec.num_gates)]);
    for (size_t g = 0; g < spec.num_gates && !placed; ++g)
      placed = try_swap(protos[g]);
    // Extra pin on a strictly deeper gate (budget overshoot, counted).
    for (size_t g = 0; g < spec.num_gates && !placed; ++g) {
      Proto& p = protos[g];
      if (p.level > d.level && p.fanins.size() < 4 &&
          !contains(p.fanins, d.output)) {
        p.fanins.push_back(d.output);
        ++net_uses[d.output];
        if (stats) ++stats->pin_overshoot;
        placed = true;
      }
    }
    if (!placed) {
      // Keep it observable as an extra PO (counted, never silent).
      pos.push_back(d.output);
      if (stats) ++stats->output_overshoot;
    }
  }
  // Fill up the PO list with the deepest remaining nets.
  if (pos.size() < spec.num_outputs) {
    std::vector<size_t> order(spec.num_gates);
    for (size_t g = 0; g < spec.num_gates; ++g) order[g] = g;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return protos[a].level > protos[b].level;
    });
    for (size_t g : order) {
      if (pos.size() >= spec.num_outputs) break;
      const NetId out = protos[g].output;
      if (std::find(pos.begin(), pos.end(), out) == pos.end())
        pos.push_back(out);
    }
  }

  // Materialize gates with cell types matching their final arity.
  for (size_t g = 0; g < spec.num_gates; ++g) {
    Proto& p = protos[g];
    const CellType* type = pick_cell(lib, p.fanins.size(), rng);
    nl.add_gate(prefix + "g" + std::to_string(g), type, p.fanins, p.output);
  }

  if (stats) {
    stats->gates += spec.num_gates;
    for (const Proto& p : protos) stats->pins += p.fanins.size();
    stats->outputs += pos.size();
  }
  return pos;
}

}  // namespace

Netlist make_random_dag(const RandomDagSpec& spec, const CellLibrary& lib,
                        RandomDagStats* stats) {
  HSSTA_REQUIRE(spec.num_inputs >= 1, "need at least one primary input");
  Rng rng(spec.seed);
  Netlist nl(spec.name);
  std::vector<NetId> pis;
  pis.reserve(spec.num_inputs);
  for (size_t i = 0; i < spec.num_inputs; ++i)
    pis.push_back(nl.add_primary_input("in" + std::to_string(i)));
  if (stats) *stats = {};
  const std::vector<NetId> pos =
      build_dag_tile(nl, spec, pis, "", lib, rng, stats);
  for (NetId po : pos) nl.mark_primary_output(po);
  nl.validate();
  return nl;
}

Netlist make_stacked_dag(const StackedDagSpec& spec, const CellLibrary& lib,
                         RandomDagStats* stats) {
  HSSTA_REQUIRE(spec.num_tiles >= 1, "need at least one tile");
  HSSTA_REQUIRE(spec.tile.num_inputs >= 1, "need at least one primary input");
  Rng rng(spec.seed);
  Netlist nl(spec.name);
  if (stats) *stats = {};
  std::vector<NetId> frontier;
  frontier.reserve(spec.tile.num_inputs);
  for (size_t i = 0; i < spec.tile.num_inputs; ++i)
    frontier.push_back(nl.add_primary_input("in" + std::to_string(i)));
  for (size_t t = 0; t < spec.num_tiles; ++t)
    frontier = build_dag_tile(nl, spec.tile, frontier,
                              "t" + std::to_string(t) + "_", lib, rng, stats);
  for (NetId po : frontier) nl.mark_primary_output(po);
  nl.validate();
  return nl;
}

Netlist make_grid_mesh(const GridMeshSpec& spec, const CellLibrary& lib) {
  HSSTA_REQUIRE(spec.width >= 1 && spec.height >= 1,
                "mesh needs at least one cell");
  Rng rng(spec.seed);
  Netlist nl(spec.name);

  // Border inputs: one per row on the west edge, one per column north.
  std::vector<NetId> west(spec.height);
  for (size_t y = 0; y < spec.height; ++y)
    west[y] = nl.add_primary_input("w" + std::to_string(y));
  std::vector<NetId> row(spec.width);
  for (size_t x = 0; x < spec.width; ++x)
    row[x] = nl.add_primary_input("n" + std::to_string(x));

  // Cell (x, y) combines its west and north neighbours; `row` carries the
  // north inputs of the next row, `carry` the west input of the next cell.
  for (size_t y = 0; y < spec.height; ++y) {
    NetId carry = west[y];
    for (size_t x = 0; x < spec.width; ++x) {
      const std::string tag =
          "c" + std::to_string(x) + "_" + std::to_string(y);
      const NetId out = nl.add_net(tag);
      nl.add_gate(tag + "_g", pick_cell(lib, 2, rng), {carry, row[x]}, out);
      carry = out;
      row[x] = out;
    }
    nl.mark_primary_output(carry);  // east border
  }
  // South border; the corner cell is already marked as the last east PO.
  for (size_t x = 0; x + 1 < spec.width; ++x) nl.mark_primary_output(row[x]);
  nl.validate();
  return nl;
}

namespace {

/// Helper that tracks gate emission for the arithmetic generators.
class Builder {
 public:
  Builder(Netlist& nl, const CellLibrary& lib) : nl_(nl), lib_(lib) {}

  NetId emit(const char* cell, std::initializer_list<NetId> ins,
             const std::string& out_name) {
    const NetId out = nl_.add_net(out_name);
    nl_.add_gate(out_name + "_g", &lib_.get(cell),
                 std::vector<NetId>(ins), out);
    return out;
  }

 private:
  Netlist& nl_;
  const CellLibrary& lib_;
};

}  // namespace

Netlist make_array_multiplier(size_t bits_a, size_t bits_b,
                              const CellLibrary& lib, std::string name) {
  HSSTA_REQUIRE(bits_a >= 2 && bits_b >= 2, "multiplier needs >= 2x2 bits");
  Netlist nl(std::move(name));
  Builder bb(nl, lib);

  std::vector<NetId> a(bits_a), b(bits_b);
  for (size_t i = 0; i < bits_a; ++i)
    a[i] = nl.add_primary_input("a" + std::to_string(i));
  for (size_t j = 0; j < bits_b; ++j)
    b[j] = nl.add_primary_input("b" + std::to_string(j));

  // Shared operand inverters; partial products are NOR2(~a, ~b) = a & b,
  // matching the NOR-only structure of c6288.
  std::vector<NetId> na(bits_a), nb(bits_b);
  for (size_t i = 0; i < bits_a; ++i)
    na[i] = bb.emit("INV", {a[i]}, "na" + std::to_string(i));
  for (size_t j = 0; j < bits_b; ++j)
    nb[j] = bb.emit("INV", {b[j]}, "nb" + std::to_string(j));

  auto pp = [&](size_t i, size_t j) {
    return bb.emit("NOR2", {na[i], nb[j]},
                   "p" + std::to_string(i) + "_" + std::to_string(j));
  };

  // NOR-only half adder (5 gates): s = x ^ y, c = x & y.
  auto half_adder = [&](NetId x, NetId y, const std::string& tag) {
    const NetId ix = bb.emit("INV", {x}, tag + "_ix");
    const NetId iy = bb.emit("INV", {y}, tag + "_iy");
    const NetId c = bb.emit("NOR2", {ix, iy}, tag + "_c");
    const NetId n1 = bb.emit("NOR2", {x, y}, tag + "_n1");
    const NetId s = bb.emit("NOR2", {n1, c}, tag + "_s");
    return std::pair{s, c};
  };

  // Classic 9-NOR full adder: two XNOR ladders for the sum plus the
  // majority carry cout = NOR(n1, m1).
  auto full_adder = [&](NetId x, NetId y, NetId cin, const std::string& tag) {
    const NetId n1 = bb.emit("NOR2", {x, y}, tag + "_n1");
    const NetId n2 = bb.emit("NOR2", {x, n1}, tag + "_n2");
    const NetId n3 = bb.emit("NOR2", {y, n1}, tag + "_n3");
    const NetId x1 = bb.emit("NOR2", {n2, n3}, tag + "_x1");  // XNOR(x, y)
    const NetId m1 = bb.emit("NOR2", {x1, cin}, tag + "_m1");
    const NetId m2 = bb.emit("NOR2", {x1, m1}, tag + "_m2");
    const NetId m3 = bb.emit("NOR2", {cin, m1}, tag + "_m3");
    const NetId s = bb.emit("NOR2", {m2, m3}, tag + "_s");  // x ^ y ^ cin
    const NetId c = bb.emit("NOR2", {n1, m1}, tag + "_c");  // majority
    return std::pair{s, c};
  };

  // Row-by-row carry-save accumulation: row i adds partial products
  // p[i][*] into the running sum at offset i.
  constexpr NetId kNone = std::numeric_limits<NetId>::max();
  std::vector<NetId> acc(bits_a + bits_b, kNone);
  for (size_t j = 0; j < bits_b; ++j) acc[j] = pp(0, j);

  for (size_t i = 1; i < bits_a; ++i) {
    NetId carry = kNone;
    for (size_t j = 0; j < bits_b; ++j) {
      const size_t pos = i + j;
      const NetId p = pp(i, j);
      const std::string tag =
          "r" + std::to_string(i) + "c" + std::to_string(j);
      std::vector<NetId> addends;
      if (acc[pos] != kNone) addends.push_back(acc[pos]);
      addends.push_back(p);
      if (carry != kNone) addends.push_back(carry);
      if (addends.size() == 1) {
        acc[pos] = addends[0];
        carry = kNone;
      } else if (addends.size() == 2) {
        auto [s, c] = half_adder(addends[0], addends[1], tag);
        acc[pos] = s;
        carry = c;
      } else {
        auto [s, c] = full_adder(addends[0], addends[1], addends[2], tag);
        acc[pos] = s;
        carry = c;
      }
    }
    if (carry != kNone) {
      const size_t pos = i + bits_b;
      HSSTA_ASSERT(acc[pos] == kNone, "carry column already occupied");
      acc[pos] = carry;
    }
  }

  for (size_t k = 0; k < acc.size(); ++k) {
    HSSTA_ASSERT(acc[k] != kNone, "product bit never produced");
    nl.mark_primary_output(acc[k]);
  }
  nl.validate();
  return nl;
}

Netlist make_ripple_adder(size_t bits, const CellLibrary& lib,
                          std::string name) {
  HSSTA_REQUIRE(bits >= 1, "adder needs at least one bit");
  Netlist nl(std::move(name));
  Builder bb(nl, lib);

  std::vector<NetId> a(bits), b(bits);
  for (size_t i = 0; i < bits; ++i)
    a[i] = nl.add_primary_input("a" + std::to_string(i));
  for (size_t i = 0; i < bits; ++i)
    b[i] = nl.add_primary_input("b" + std::to_string(i));
  NetId carry = nl.add_primary_input("cin");

  for (size_t i = 0; i < bits; ++i) {
    const std::string tag = "fa" + std::to_string(i);
    const NetId axb = bb.emit("XOR2", {a[i], b[i]}, tag + "_axb");
    const NetId s = bb.emit("XOR2", {axb, carry}, tag + "_s");
    const NetId and1 = bb.emit("AND2", {a[i], b[i]}, tag + "_and1");
    const NetId and2 = bb.emit("AND2", {carry, axb}, tag + "_and2");
    carry = bb.emit("OR2", {and1, and2}, tag + "_cout");
    nl.mark_primary_output(s);
  }
  nl.mark_primary_output(carry);
  nl.validate();
  return nl;
}

}  // namespace hssta::netlist
