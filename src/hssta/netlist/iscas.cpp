#include "hssta/netlist/iscas.hpp"

#include "hssta/netlist/generate.hpp"
#include "hssta/util/error.hpp"

namespace hssta::netlist {

const std::vector<IscasProfile>& iscas85_profiles() {
  // inputs/outputs/gates are the published circuit statistics; pins matches
  // the paper's Eo column (total gate input pins), gates = Vo - inputs.
  // Depths are the published levelized depths (c6288's is realized
  // structurally by the multiplier generator).
  static const std::vector<IscasProfile> profiles = {
      {"c432", 36, 7, 160, 336, 17},
      {"c499", 41, 32, 202, 408, 11},
      {"c880", 60, 26, 383, 729, 24},
      {"c1355", 41, 32, 546, 1064, 24},
      {"c1908", 33, 25, 880, 1498, 40},
      {"c2670", 233, 140, 1193, 2076, 32},
      {"c3540", 50, 22, 1669, 2939, 47},
      {"c5315", 178, 123, 2307, 4386, 49},
      {"c6288", 32, 32, 2416, 4800, 124},
      {"c7552", 207, 108, 3512, 6144, 43},
  };
  return profiles;
}

const IscasProfile& iscas85_profile(std::string_view name) {
  for (const IscasProfile& p : iscas85_profiles())
    if (p.name == name) return p;
  throw Error("unknown ISCAS85 circuit: " + std::string(name));
}

Netlist make_iscas85(std::string_view name, const library::CellLibrary& lib,
                     uint64_t seed) {
  const IscasProfile& p = iscas85_profile(name);
  if (p.name == "c6288") {
    // The one circuit whose structure is fully documented: a 16x16 Braun
    // array multiplier (256 partial products, 16 HA + 224 FA in NOR logic).
    Netlist nl = make_array_multiplier(16, 16, lib, p.name);
    return nl;
  }
  RandomDagSpec spec;
  spec.name = p.name;
  spec.num_inputs = p.inputs;
  spec.num_outputs = p.outputs;
  spec.num_gates = p.gates;
  spec.num_pins = p.pins;
  spec.depth = p.depth;
  // Mix the circuit name into the seed so each benchmark is distinct but
  // reproducible.
  uint64_t h = seed;
  for (char c : p.name) h = h * 1099511628211ull + static_cast<uint64_t>(c);
  spec.seed = h;
  return make_random_dag(spec, lib);
}

}  // namespace hssta::netlist
