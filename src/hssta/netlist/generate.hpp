/// \file generate.hpp
/// Circuit generators.
///
/// The reproduction runs offline, so the ISCAS85 benchmark netlists are
/// replaced by synthetic circuits with matching published statistics
/// (see DESIGN.md "Substitutions"):
///  * make_random_dag — a seeded levelized DAG generator that hits the
///    requested gate count, primary IO counts, total pin count (the paper's
///    Eo) exactly and the logic depth structurally;
///  * make_array_multiplier — a genuine carry-save array multiplier in
///    NOR/INV logic, the documented structure of c6288 (16 half adders +
///    224 full adders for 16x16);
///  * make_ripple_adder — a small arithmetic circuit for tests/examples.

#pragma once

#include <cstdint>
#include <string>

#include "hssta/library/cell_library.hpp"
#include "hssta/netlist/netlist.hpp"

namespace hssta::netlist {

/// Target statistics for the random DAG generator.
struct RandomDagSpec {
  std::string name = "random";
  size_t num_inputs = 8;
  size_t num_outputs = 4;
  size_t num_gates = 64;
  /// Total gate input pins (the timing graph's edge count). Must lie in
  /// [num_gates, 4 * num_gates]; hit exactly (barring a rare connectivity
  /// repair, which may add a few).
  size_t num_pins = 128;
  /// Logic levels; the generator guarantees at least this depth.
  size_t depth = 10;
  uint64_t seed = 1;
};

/// Generate a connected, acyclic, combinational netlist matching `spec`.
/// Every primary input drives at least one gate; every gate reaches a
/// primary output or is itself a primary output net. Deterministic in seed.
[[nodiscard]] Netlist make_random_dag(const RandomDagSpec& spec,
                                      const library::CellLibrary& lib);

/// Carry-save array multiplier (Braun style) over NOR2/INV cells, mirroring
/// the documented structure of ISCAS85 c6288. bits_a x bits_b -> product of
/// bits_a + bits_b bits. For 16x16: 2384 gates, 4736 pins, depth ~90.
[[nodiscard]] Netlist make_array_multiplier(size_t bits_a, size_t bits_b,
                                            const library::CellLibrary& lib,
                                            std::string name = "mult");

/// Ripple-carry adder over XOR/AND/OR cells: inputs a[i], b[i], cin;
/// outputs s[i], cout.
[[nodiscard]] Netlist make_ripple_adder(size_t bits,
                                        const library::CellLibrary& lib,
                                        std::string name = "rca");

}  // namespace hssta::netlist
