/// \file generate.hpp
/// Circuit generators.
///
/// The reproduction runs offline, so the ISCAS85 benchmark netlists are
/// replaced by synthetic circuits with matching published statistics
/// (see DESIGN.md "Substitutions"):
///  * make_random_dag — a seeded levelized DAG generator that hits the
///    requested gate count, primary IO counts, total pin count (the paper's
///    Eo) exactly and the logic depth structurally;
///  * make_array_multiplier — a genuine carry-save array multiplier in
///    NOR/INV logic, the documented structure of c6288 (16 half adders +
///    224 full adders for 16x16);
///  * make_ripple_adder — a small arithmetic circuit for tests/examples.

#pragma once

#include <cstdint>
#include <string>

#include "hssta/library/cell_library.hpp"
#include "hssta/netlist/netlist.hpp"

namespace hssta::netlist {

/// Target statistics for the random DAG generator.
struct RandomDagSpec {
  std::string name = "random";
  size_t num_inputs = 8;
  size_t num_outputs = 4;
  size_t num_gates = 64;
  /// Total gate input pins (the timing graph's edge count). Must lie in
  /// [num_gates, 4 * num_gates]; hit exactly (barring a rare connectivity
  /// repair, which may add a few — see RandomDagStats).
  size_t num_pins = 128;
  /// Logic levels; the generator guarantees at least this depth.
  size_t depth = 10;
  uint64_t seed = 1;
};

/// Realized statistics of a generator run. gates/pins/outputs are what the
/// netlist actually contains; the three repair counters are zero except for
/// structurally over-constrained specs (every deviation from the spec is
/// counted here, never silent).
struct RandomDagStats {
  size_t gates = 0;
  size_t pins = 0;
  size_t outputs = 0;
  /// Pin budget that could not be placed: every gate with arity headroom
  /// already consumes all distinct sources available below its level.
  size_t pin_shortfall = 0;
  /// Pins added beyond the budget while wiring up leftover primary inputs
  /// or absorbing dangling gate outputs (no pin-neutral swap existed).
  size_t pin_overshoot = 0;
  /// Dangling gate outputs kept as extra primary outputs because no deeper
  /// gate could absorb them.
  size_t output_overshoot = 0;
};

/// Generate a connected, acyclic, combinational netlist matching `spec`.
/// Every primary input drives at least one gate; every gate reaches a
/// primary output or is itself a primary output net; no gate has the same
/// fanin net on two pins. Deterministic in seed. When `stats` is non-null
/// the realized statistics are written to it.
[[nodiscard]] Netlist make_random_dag(const RandomDagSpec& spec,
                                      const library::CellLibrary& lib,
                                      RandomDagStats* stats = nullptr);

/// A stack of make_random_dag tiles: tile t draws its sources from tile
/// t-1's outputs instead of primary inputs, so gate count scales linearly
/// in num_tiles (up to millions of gates) while per-tile construction cost
/// stays flat. Depth is num_tiles * tile.depth; the last tile's outputs
/// are the primary outputs.
struct StackedDagSpec {
  std::string name = "stack";
  /// Per-tile shape. tile.num_inputs sets the width of the primary input
  /// interface; deeper tiles consume however many outputs the previous
  /// tile realized.
  RandomDagSpec tile;
  size_t num_tiles = 4;
  uint64_t seed = 1;
};

[[nodiscard]] Netlist make_stacked_dag(const StackedDagSpec& spec,
                                       const library::CellLibrary& lib,
                                       RandomDagStats* stats = nullptr);

/// A width x height lattice of 2-input cells: cell (x, y) combines its west
/// and north neighbours (border cells read primary inputs), the east and
/// south borders are primary outputs. Deterministic shape: width * height
/// gates, exactly 2 pins per gate, depth width + height - 1 — a scalable
/// regular benchmark whose statistics need no repair passes at all.
struct GridMeshSpec {
  std::string name = "mesh";
  size_t width = 32;
  size_t height = 32;
  uint64_t seed = 1;
};

[[nodiscard]] Netlist make_grid_mesh(const GridMeshSpec& spec,
                                     const library::CellLibrary& lib);

/// Carry-save array multiplier (Braun style) over NOR2/INV cells, mirroring
/// the documented structure of ISCAS85 c6288. bits_a x bits_b -> product of
/// bits_a + bits_b bits. For 16x16: 2384 gates, 4736 pins, depth ~90.
[[nodiscard]] Netlist make_array_multiplier(size_t bits_a, size_t bits_b,
                                            const library::CellLibrary& lib,
                                            std::string name = "mult");

/// Ripple-carry adder over XOR/AND/OR cells: inputs a[i], b[i], cin;
/// outputs s[i], cout.
[[nodiscard]] Netlist make_ripple_adder(size_t bits,
                                        const library::CellLibrary& lib,
                                        std::string name = "rca");

}  // namespace hssta::netlist
