#include "hssta/netlist/netlist.hpp"

#include <algorithm>

#include "hssta/util/error.hpp"
#include "hssta/util/hash.hpp"

namespace hssta::netlist {

NetId Netlist::add_net(std::string name) {
  HSSTA_REQUIRE(!name.empty(), "net needs a name");
  const NetId id = static_cast<NetId>(net_names_.size());
  net_names_.push_back(std::move(name));
  net_driver_.push_back(kNoGate);
  net_reg_driver_.push_back(kNoReg);
  net_is_pi_.push_back(0);
  net_is_po_.push_back(0);
  sinks_valid_ = false;
  return id;
}

void Netlist::mark_primary_input(NetId net) {
  HSSTA_REQUIRE(net < num_nets(), "net id out of range");
  HSSTA_REQUIRE(net_driver_[net] == kNoGate && net_reg_driver_[net] == kNoReg,
                "primary input must not have a driver: " + net_names_[net]);
  if (!net_is_pi_[net]) {
    net_is_pi_[net] = 1;
    primary_inputs_.push_back(net);
  }
}

NetId Netlist::add_primary_input(std::string name) {
  const NetId id = add_net(std::move(name));
  mark_primary_input(id);
  return id;
}

void Netlist::mark_primary_output(NetId net) {
  HSSTA_REQUIRE(net < num_nets(), "net id out of range");
  if (!net_is_po_[net]) {
    net_is_po_[net] = 1;
    primary_outputs_.push_back(net);
  }
}

GateId Netlist::add_gate(std::string name, const library::CellType* type,
                         std::vector<NetId> fanins, NetId output) {
  HSSTA_REQUIRE(type != nullptr, "gate needs a cell type");
  HSSTA_REQUIRE(fanins.size() == type->num_inputs,
                "gate fanin count must match cell arity: " + name);
  HSSTA_REQUIRE(output < num_nets(), "gate output net out of range");
  HSSTA_REQUIRE(net_driver_[output] == kNoGate &&
                    net_reg_driver_[output] == kNoReg && !net_is_pi_[output],
                "net already driven: " + net_names_[output]);
  for (NetId f : fanins)
    HSSTA_REQUIRE(f < num_nets(), "gate fanin net out of range");
  const GateId id = static_cast<GateId>(gates_.size());
  gates_.push_back(Gate{std::move(name), type, std::move(fanins), output});
  net_driver_[output] = id;
  sinks_valid_ = false;
  return id;
}

RegId Netlist::add_register(std::string name, NetId data_in, NetId data_out,
                            NetId clock, int init) {
  HSSTA_REQUIRE(!name.empty(), "register needs a name");
  HSSTA_REQUIRE(data_in < num_nets(), "register data_in net out of range");
  HSSTA_REQUIRE(data_out < num_nets(), "register data_out net out of range");
  HSSTA_REQUIRE(clock == kNoNet || clock < num_nets(),
                "register clock net out of range");
  HSSTA_REQUIRE(net_driver_[data_out] == kNoGate &&
                    net_reg_driver_[data_out] == kNoReg &&
                    !net_is_pi_[data_out],
                "net already driven: " + net_names_[data_out]);
  HSSTA_REQUIRE(init >= 0 && init <= 3,
                "register init value must be 0..3: " + name);
  const RegId id = static_cast<RegId>(registers_.size());
  registers_.push_back(Register{std::move(name), data_in, data_out, clock,
                                init});
  net_reg_driver_[data_out] = id;
  return id;
}

bool Netlist::is_primary_input(NetId n) const {
  HSSTA_REQUIRE(n < num_nets(), "net id out of range");
  return net_is_pi_[n] != 0;
}

bool Netlist::is_primary_output(NetId n) const {
  HSSTA_REQUIRE(n < num_nets(), "net id out of range");
  return net_is_po_[n] != 0;
}

NetId Netlist::net_by_name(const std::string& name) const {
  for (NetId n = 0; n < num_nets(); ++n)
    if (net_names_[n] == name) return n;
  throw Error("no net named " + name + " in netlist " + name_);
}

const std::vector<std::vector<GateId>>& Netlist::net_sinks() const {
  if (!sinks_valid_) {
    sinks_cache_.assign(num_nets(), {});
    for (GateId g = 0; g < gates_.size(); ++g)
      for (NetId f : gates_[g].fanins) sinks_cache_[f].push_back(g);
    sinks_valid_ = true;
  }
  return sinks_cache_;
}

std::vector<GateId> Netlist::topological_order() const {
  // Kahn's algorithm over gates; a gate is ready once all fanin nets are
  // resolved (PI or emitted gate output).
  std::vector<size_t> pending(gates_.size());
  std::vector<GateId> ready;
  ready.reserve(gates_.size());
  for (GateId g = 0; g < gates_.size(); ++g) {
    size_t unresolved = 0;
    for (NetId f : gates_[g].fanins)
      if (net_driver_[f] != kNoGate) ++unresolved;
    pending[g] = unresolved;
    if (unresolved == 0) ready.push_back(g);
  }

  const auto& sinks = net_sinks();
  std::vector<GateId> order;
  order.reserve(gates_.size());
  for (size_t head = 0; head < ready.size(); ++head) {
    const GateId g = ready[head];
    order.push_back(g);
    // net_sinks() lists a sink once per consuming pin, so decrementing by
    // one per occurrence retires exactly the pins fed by this gate.
    for (GateId s : sinks[gates_[g].output]) {
      HSSTA_ASSERT(pending[s] > 0, "topo bookkeeping underflow");
      if (--pending[s] == 0) ready.push_back(s);
    }
  }
  HSSTA_REQUIRE(order.size() == gates_.size(),
                "netlist contains a combinational cycle");
  return order;
}

size_t Netlist::num_pins() const {
  size_t pins = 0;
  for (const Gate& g : gates_) pins += g.fanins.size();
  return pins;
}

size_t Netlist::depth() const {
  std::vector<size_t> level(num_nets(), 0);
  size_t deepest = 0;
  for (GateId g : topological_order()) {
    size_t lv = 0;
    for (NetId f : gates_[g].fanins) lv = std::max(lv, level[f]);
    level[gates_[g].output] = lv + 1;
    deepest = std::max(deepest, lv + 1);
  }
  return deepest;
}

void Netlist::validate() const {
  for (NetId n = 0; n < num_nets(); ++n) {
    HSSTA_REQUIRE(net_is_pi_[n] || net_driver_[n] != kNoGate ||
                      net_reg_driver_[n] != kNoReg,
                  "undriven net: " + net_names_[n]);
  }
  for (const Gate& g : gates_) {
    HSSTA_REQUIRE(g.type != nullptr, "gate without type: " + g.name);
    HSSTA_REQUIRE(g.fanins.size() == g.type->num_inputs,
                  "arity mismatch on gate: " + g.name);
  }
  HSSTA_REQUIRE(!primary_outputs_.empty(), "netlist has no primary outputs");
  (void)topological_order();  // throws on cycles
}

std::vector<bool> Netlist::simulate(const std::vector<bool>& pi_values) const {
  HSSTA_REQUIRE(registers_.empty(),
                "sequential netlist: simulate needs a register state");
  return simulate(pi_values, {});
}

std::vector<bool> Netlist::simulate(
    const std::vector<bool>& pi_values,
    const std::vector<bool>& register_state) const {
  HSSTA_REQUIRE(pi_values.size() == primary_inputs_.size(),
                "simulate needs one value per primary input");
  HSSTA_REQUIRE(register_state.size() == registers_.size(),
                "simulate needs one state bit per register");
  // std::vector<bool> is a bitset and cannot back a std::span<const bool>;
  // evaluate over plain bytes and convert at the end.
  std::vector<uint8_t> value(num_nets(), 0);
  for (size_t i = 0; i < primary_inputs_.size(); ++i)
    value[primary_inputs_[i]] = pi_values[i] ? 1 : 0;
  for (size_t r = 0; r < registers_.size(); ++r)
    value[registers_[r].data_out] = register_state[r] ? 1 : 0;
  constexpr size_t kMaxArity = 16;
  bool ins[kMaxArity];
  for (GateId g : topological_order()) {
    const Gate& gate = gates_[g];
    HSSTA_REQUIRE(gate.fanins.size() <= kMaxArity,
                  "gate arity beyond simulation limit: " + gate.name);
    for (size_t i = 0; i < gate.fanins.size(); ++i)
      ins[i] = value[gate.fanins[i]] != 0;
    value[gate.output] = library::eval_gate(
        gate.type->func, std::span<const bool>(ins, gate.fanins.size()));
  }
  return {value.begin(), value.end()};
}

// Tripwire (see flow/config.cpp): a new Gate field must be added to the
// hash below and the version tag bumped.
#if defined(__GLIBCXX__) && defined(__x86_64__)
static_assert(sizeof(Gate) == 72,
              "Gate changed: update fingerprint() and its tag");
#endif

uint64_t fingerprint(const Netlist& nl) {
  util::Fnv1a h;
  h.str("hssta.netlist.v1");
  h.str(nl.name());
  h.u64(nl.num_nets());
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    h.str(nl.net_name(n));
    h.b(nl.is_primary_input(n));
    h.b(nl.is_primary_output(n));
  }
  // PI/PO *orders* matter: ports are positional everywhere downstream.
  h.u64(nl.primary_inputs().size());
  for (NetId n : nl.primary_inputs()) h.u64(n);
  h.u64(nl.primary_outputs().size());
  for (NetId n : nl.primary_outputs()) h.u64(n);
  h.u64(nl.num_gates());
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const Gate& gate = nl.gate(g);
    h.str(gate.name);
    h.str(gate.type->name);
    h.u64(gate.fanins.size());
    for (NetId f : gate.fanins) h.u64(f);
    h.u64(gate.output);
  }
  // Registers are hashed only when present, so combinational netlists keep
  // their pre-sequential fingerprints (and cached models stay valid).
  if (nl.num_registers() > 0) {
    h.str("hssta.netlist.regs.v1");
    h.u64(nl.num_registers());
    for (const Register& r : nl.registers()) {
      h.str(r.name);
      h.u64(r.data_in);
      h.u64(r.data_out);
      h.u64(r.clock);
      h.u64(static_cast<uint64_t>(r.init));
    }
  }
  return h.value();
}

}  // namespace hssta::netlist
