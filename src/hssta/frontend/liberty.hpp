/// \file liberty.hpp
/// Liberty-lite: a reader for the subset of the Liberty (.lib) cell
/// library format that hssta's delay model consumes — cell names, pin
/// directions and capacitances, per-arc nominal delays of the old-style
/// CMOS model (intrinsic_rise/intrinsic_fall + rise/fall_resistance) and
/// boolean `function` strings, plus a `sensitivity(PARAM){value: v;}`
/// extension group carrying the paper's relative delay sensitivities:
///
///   library (my90nm) {
///     cell (NAND2) {
///       area : 2.0;
///       pin (A) { direction : input; capacitance : 1.1; }
///       pin (B) { direction : input; capacitance : 1.1; }
///       pin (Y) {
///         direction : output;
///         function : "(A * B)'";
///         timing () {
///           related_pin : "A";
///           intrinsic_rise : 0.035; intrinsic_fall : 0.031;
///           rise_resistance : 0.012; fall_resistance : 0.011;
///         }
///         timing () { related_pin : "B"; intrinsic : 0.038;
///                     rise_resistance : 0.012; }
///       }
///       sensitivity (Leff) { value : 0.55; }
///     }
///   }
///
/// Mapping onto library::CellType: function strings must be a single
/// n-ary operator (AND/OR/XOR families, `'` or `!` negation) over the
/// cell's input pins; per-pin intrinsic = max(rise, fall) of the arc with
/// that related_pin; drive_res = max resistance over all arcs; input_cap
/// = max declared pin capacitance; width = area. Unknown simple
/// attributes and unknown groups are skipped; missing required data
/// (directions, function, arcs, capacitances) is a hard error. All
/// errors throw hssta::Error as "liberty parse error at
/// <origin>:<line>:<col>: ...".

#pragma once

#include <iosfwd>
#include <string>

#include "hssta/library/cell_library.hpp"

namespace hssta::frontend {

/// A parsed Liberty-lite library: the library name plus the cells,
/// ready for netlist readers. Move-only (CellLibrary pins cell
/// addresses).
struct LibertyLibrary {
  std::string name;
  library::CellLibrary cells;
};

/// Parse Liberty-lite text; `origin` names the source in diagnostics.
[[nodiscard]] LibertyLibrary read_liberty(std::istream& in,
                                          std::string origin = "<liberty>");

/// Parse from a string (convenience for tests).
[[nodiscard]] LibertyLibrary read_liberty_string(const std::string& text);

/// Parse from a file path; errors name the path, line and column.
[[nodiscard]] LibertyLibrary read_liberty_file(const std::string& path);

/// Write a library as Liberty-lite. Input pins are named A, B, C, ... and
/// the output Y; the result re-reads into an identical library.
void write_liberty(std::ostream& out, const std::string& name,
                   const library::CellLibrary& lib);

/// Write to a string (convenience for tests).
[[nodiscard]] std::string write_liberty_string(const std::string& name,
                                               const library::CellLibrary& lib);

}  // namespace hssta::frontend
