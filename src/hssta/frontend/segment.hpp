/// \file segment.hpp
/// Clock-boundary segmentation: split a sequential netlist into
/// register-bounded combinational segments.
///
/// Two gates share a segment iff they are connected through nets without
/// crossing a register — a register's data_in and data_out are distinct
/// nets, so the flop cuts connectivity by construction. Each segment is a
/// combinational DAG launched by primary inputs and/or register outputs
/// and captured by primary outputs and/or register data inputs; the
/// sequential model extractor analyzes one segment at a time and folds
/// register-to-register segment delays into FF-to-FF constraints.
///
/// Everything is deterministic: segments are ordered by their smallest
/// gate id, gates within a segment by gate id, and boundary nets by first
/// use in (gate id, pin) order.

#pragma once

#include <vector>

#include "hssta/netlist/netlist.hpp"

namespace hssta::frontend {

/// One register-bounded combinational segment.
struct Segment {
  /// Member gates, ascending id.
  std::vector<netlist::GateId> gates;
  /// Nets feeding the segment from outside: primary inputs and register
  /// outputs consumed by a member gate. First-use order.
  std::vector<netlist::NetId> launch_nets;
  /// Nets the segment drives into a boundary: primary outputs and
  /// register data inputs driven by a member gate. First-use order.
  std::vector<netlist::NetId> capture_nets;
};

/// The segmentation of a netlist: a partition of its gates.
struct Segmentation {
  std::vector<Segment> segments;  ///< ordered by smallest member gate id
  /// Segment index per gate (size = num_gates); every gate is in exactly
  /// one segment.
  std::vector<uint32_t> gate_segment;
};

/// Partition `nl` into register-bounded combinational segments. Works on
/// combinational netlists too (every weakly-connected component becomes a
/// segment with PI launches and PO captures).
[[nodiscard]] Segmentation segment_netlist(const netlist::Netlist& nl);

}  // namespace hssta::frontend
