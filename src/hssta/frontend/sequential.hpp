/// \file sequential.hpp
/// Sequential model extraction: derive the register records and folded
/// FF-to-FF internal constraints a sequential module contributes to its
/// extended timing model ("hstm 2").
///
/// Constraints come from the clock-boundary segmentation (segment.hpp):
/// for every register-bounded segment that is both launched and captured
/// by flops, one forward propagation from the segment's register launch
/// vertices (injected at arrival 0) is folded with the statistical max
/// over the segment's register capture vertices — the distribution of the
/// worst FF-to-FF path through that segment. Each propagation is a serial
/// sweep in segment order, so results are bit-identical at any thread
/// count by construction.
///
/// Direct register-to-register connections (a flop's data input net that
/// is itself a register output, with no gates between) carry zero
/// combinational delay and contribute no constraint.

#pragma once

#include <vector>

#include "hssta/model/timing_model.hpp"
#include "hssta/netlist/netlist.hpp"
#include "hssta/timing/builder.hpp"

namespace hssta::frontend {

/// The sequential data of one module, ready for
/// model::TimingModel::set_sequential.
struct SequentialExtraction {
  std::vector<model::ModelRegister> registers;
  std::vector<model::SequentialConstraint> constraints;
};

/// Extract register records and per-segment FF-to-FF constraints from a
/// sequential netlist and its built timing graph (`built` must come from
/// the same netlist). Returns empty lists for combinational netlists.
[[nodiscard]] SequentialExtraction extract_sequential(
    const netlist::Netlist& nl, const timing::BuiltGraph& built);

}  // namespace hssta::frontend
