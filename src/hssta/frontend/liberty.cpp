#include "hssta/frontend/liberty.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <istream>
#include <optional>
#include <ostream>
#include <sstream>

#include "hssta/util/error.hpp"
#include "hssta/util/strings.hpp"

namespace hssta::frontend {

namespace {

using library::CellLibrary;
using library::CellType;
using library::GateFunc;
using library::Sensitivity;

/// --- tokenizer ----------------------------------------------------------

struct Token {
  enum Kind { kIdent, kString, kPunct, kEof } kind = kEof;
  std::string text;
  int line = 1;
  int col = 1;
};

class Lexer {
 public:
  Lexer(std::istream& in, std::string origin) : origin_(std::move(origin)) {
    std::ostringstream os;
    os << in.rdbuf();
    src_ = os.str();
  }

  const std::string& origin() const { return origin_; }

  [[noreturn]] void fail(const Token& at, const std::string& msg) const {
    std::ostringstream os;
    os << "liberty parse error at " << origin_ << ':' << at.line << ':'
       << at.col << ": " << msg;
    throw Error(os.str());
  }

  Token next() {
    skip_space_and_comments();
    Token t;
    t.line = line_;
    t.col = col_;
    if (pos_ >= src_.size()) {
      t.kind = Token::kEof;
      return t;
    }
    const char c = src_[pos_];
    if (c == '"') {
      t.kind = Token::kString;
      advance();
      while (pos_ < src_.size() && src_[pos_] != '"') {
        if (src_[pos_] == '\n') fail(t, "unterminated string");
        t.text += src_[pos_];
        advance();
      }
      if (pos_ >= src_.size()) fail(t, "unterminated string");
      advance();  // closing quote
      return t;
    }
    if (is_ident_char(c)) {
      t.kind = Token::kIdent;
      while (pos_ < src_.size() && is_ident_char(src_[pos_])) {
        t.text += src_[pos_];
        advance();
      }
      return t;
    }
    // Single-character punctuation: ( ) { } ; : ,
    t.kind = Token::kPunct;
    t.text = std::string(1, c);
    advance();
    return t;
  }

 private:
  static bool is_ident_char(char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '+' ||
           c == '-' || c == '!' || c == '\'' || c == '*' || c == '&' ||
           c == '|' || c == '^';
  }

  void advance() {
    if (src_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  void skip_space_and_comments() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\\') {
        advance();
        continue;
      }
      if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '/') {
        while (pos_ < src_.size() && src_[pos_] != '\n') advance();
        continue;
      }
      if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '*') {
        const int line = line_;
        const int col = col_;
        advance();
        advance();
        while (pos_ + 1 < src_.size() &&
               !(src_[pos_] == '*' && src_[pos_ + 1] == '/'))
          advance();
        if (pos_ + 1 >= src_.size()) {
          Token t;
          t.line = line;
          t.col = col;
          fail(t, "unterminated /* comment");
        }
        advance();
        advance();
        continue;
      }
      break;
    }
  }

  std::string origin_;
  std::string src_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

/// --- function-string parsing --------------------------------------------

/// A Liberty-lite boolean function: one n-ary operator over plain input
/// pin names, optionally negated as a whole.
struct FuncExpr {
  GateFunc func = GateFunc::kBuf;  ///< kBuf/kAnd/kOr/kXor before negation
  std::vector<std::string> operands;
  bool negated = false;
};

class FuncParser {
 public:
  FuncParser(const std::string& text, const Lexer& lx, const Token& at)
      : text_(text), lx_(lx), at_(at) {}

  FuncExpr parse() {
    FuncExpr e = expr();
    skip_ws();
    if (pos_ != text_.size())
      fail("trailing characters in function: " + text_.substr(pos_));
    return e;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    lx_.fail(at_, "bad function \"" + text_ + "\": " + msg);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t'))
      ++pos_;
  }

  char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  static bool is_name_char(char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_' || c == '[' || c == ']';
  }

  /// unary := '!' unary | primary '\''*
  FuncExpr unary() {
    if (peek() == '!') {
      ++pos_;
      FuncExpr e = unary();
      e.negated = !e.negated;
      return e;
    }
    FuncExpr e = primary();
    while (peek() == '\'') {
      ++pos_;
      e.negated = !e.negated;
    }
    return e;
  }

  FuncExpr primary() {
    const char c = peek();
    if (c == '(') {
      ++pos_;
      FuncExpr e = expr();
      if (peek() != ')') fail("expected )");
      ++pos_;
      return e;
    }
    if (!is_name_char(c)) fail("expected a pin name");
    FuncExpr e;
    while (pos_ < text_.size() && is_name_char(text_[pos_])) {
      if (e.operands.empty()) e.operands.emplace_back();
      e.operands.back() += text_[pos_];
      ++pos_;
    }
    return e;
  }

  /// expr := unary (op unary)* — all operators must agree.
  FuncExpr expr() {
    FuncExpr first = unary();
    GateFunc op = GateFunc::kBuf;
    bool have_op = false;
    std::vector<FuncExpr> terms{std::move(first)};
    for (;;) {
      const char c = peek();
      GateFunc this_op;
      if (c == '*' || c == '&') this_op = GateFunc::kAnd;
      else if (c == '+' || c == '|') this_op = GateFunc::kOr;
      else if (c == '^') this_op = GateFunc::kXor;
      else break;
      if (have_op && this_op != op)
        fail("mixed operators need parentheses");
      op = this_op;
      have_op = true;
      ++pos_;
      terms.push_back(unary());
    }
    if (!have_op) return std::move(terms[0]);
    FuncExpr e;
    e.func = op;
    for (FuncExpr& t : terms) {
      // Operands must be plain pin names: negated or compound terms would
      // need logic this library cannot represent as a single gate.
      if (t.negated || t.func != GateFunc::kBuf || t.operands.size() != 1)
        fail("operands must be plain pin names (single-operator form)");
      e.operands.push_back(std::move(t.operands[0]));
    }
    return e;
  }

  const std::string& text_;
  const Lexer& lx_;
  const Token& at_;
  size_t pos_ = 0;
};

GateFunc resolve_func(const FuncExpr& e, const Lexer& lx, const Token& at,
                      const std::string& text) {
  if (e.operands.empty())
    lx.fail(at, "bad function \"" + text + "\": no operands");
  if (e.operands.size() == 1)
    return e.negated ? GateFunc::kNot : GateFunc::kBuf;
  switch (e.func) {
    case GateFunc::kAnd: return e.negated ? GateFunc::kNand : GateFunc::kAnd;
    case GateFunc::kOr: return e.negated ? GateFunc::kNor : GateFunc::kOr;
    case GateFunc::kXor: return e.negated ? GateFunc::kXnor : GateFunc::kXor;
    default:
      lx.fail(at, "bad function \"" + text + "\": unsupported operator");
  }
}

/// --- grammar ------------------------------------------------------------

struct Arc {
  std::string related_pin;
  std::optional<double> intrinsic_rise;
  std::optional<double> intrinsic_fall;
  std::optional<double> rise_resistance;
  std::optional<double> fall_resistance;
  Token at;
};

struct PinDecl {
  std::string name;
  std::string direction;
  std::optional<double> capacitance;
  std::string function;
  Token function_at;
  std::vector<Arc> arcs;
  Token at;
};

class Parser {
 public:
  Parser(std::istream& in, std::string origin)
      : lx_(in, std::move(origin)) {
    advance();
  }

  LibertyLibrary parse() {
    expect_ident("library");
    LibertyLibrary lib;
    lib.name = group_arg("library");
    expect_punct("{");
    while (!at_punct("}")) parse_library_statement(lib);
    expect_punct("}");
    if (cur_.kind != Token::kEof)
      lx_.fail(cur_, "trailing content after library group");
    return lib;
  }

 private:
  void advance() { cur_ = lx_.next(); }

  bool at_punct(const char* p) const {
    return cur_.kind == Token::kPunct && cur_.text == p;
  }

  void expect_punct(const char* p) {
    if (!at_punct(p))
      lx_.fail(cur_, std::string("expected '") + p + "', got '" + cur_.text +
                         "'");
    advance();
  }

  void expect_ident(const char* what) {
    if (cur_.kind != Token::kIdent || cur_.text != what)
      lx_.fail(cur_, std::string("expected '") + what + "', got '" +
                         cur_.text + "'");
    advance();
  }

  /// Consume `( args... )` and return the first argument (others ignored).
  std::string group_arg(const std::string& what) {
    expect_punct("(");
    std::string first;
    while (!at_punct(")")) {
      if (cur_.kind == Token::kEof)
        lx_.fail(cur_, "unterminated argument list of " + what);
      if (cur_.kind != Token::kPunct && first.empty()) first = cur_.text;
      advance();
    }
    expect_punct(")");
    return first;
  }

  /// Consume a simple attribute value (`: value ;`) and return it.
  Token attr_value() {
    expect_punct(":");
    if (cur_.kind != Token::kIdent && cur_.kind != Token::kString)
      lx_.fail(cur_, "expected an attribute value, got '" + cur_.text + "'");
    Token v = cur_;
    advance();
    // Tolerate a unit suffix token (e.g. `1.0 ns`).
    if (cur_.kind == Token::kIdent) advance();
    if (at_punct(";")) advance();  // trailing ';' is conventionally optional
    return v;
  }

  double attr_number(const std::string& key) {
    const Token v = attr_value();
    try {
      return parse_number(key, v.text);
    } catch (const Error& e) {
      lx_.fail(v, e.what());
    }
  }

  /// Skip a balanced `{ ... }` group body (cursor is at '{').
  void skip_group() {
    expect_punct("{");
    int depth = 1;
    while (depth > 0) {
      if (cur_.kind == Token::kEof) lx_.fail(cur_, "unterminated group");
      if (at_punct("{")) ++depth;
      if (at_punct("}")) --depth;
      advance();
    }
  }

  /// Statement dispatch: `ident : value ;` (simple attribute), `ident
  /// (args) { ... }` (group) or `ident (args) ;` (complex attribute).
  /// Returns the statement's head identifier; group bodies are handled by
  /// the callbacks below.
  enum class Stmt { kAttr, kGroup, kComplex };

  Stmt statement_head(Token& head, std::string& arg) {
    if (cur_.kind != Token::kIdent)
      lx_.fail(cur_, "expected a statement, got '" + cur_.text + "'");
    head = cur_;
    advance();
    if (at_punct(":")) return Stmt::kAttr;  // value still pending
    if (at_punct("(")) {
      arg = group_arg(head.text);
      if (at_punct("{")) return Stmt::kGroup;
      if (at_punct(";")) {
        advance();
        return Stmt::kComplex;
      }
      return Stmt::kComplex;  // e.g. `capacitive_load_unit (1,ff)` sans ';'
    }
    lx_.fail(cur_, "expected ':' or '(' after '" + head.text + "'");
  }

  void parse_library_statement(LibertyLibrary& lib) {
    Token head;
    std::string arg;
    switch (statement_head(head, arg)) {
      case Stmt::kAttr:
        (void)attr_value();  // library-level attributes are ignored
        return;
      case Stmt::kComplex:
        return;
      case Stmt::kGroup:
        if (head.text == "cell") {
          parse_cell(lib, arg, head);
        } else {
          skip_group();
        }
        return;
    }
  }

  void parse_cell(LibertyLibrary& lib, const std::string& name,
                  const Token& at) {
    if (name.empty()) lx_.fail(at, "cell needs a name");
    std::vector<PinDecl> pins;
    std::vector<Sensitivity> sens;
    std::optional<double> area;
    expect_punct("{");
    while (!at_punct("}")) {
      Token head;
      std::string arg;
      switch (statement_head(head, arg)) {
        case Stmt::kAttr:
          if (head.text == "area")
            area = attr_number("area");
          else
            (void)attr_value();
          break;
        case Stmt::kComplex:
          break;
        case Stmt::kGroup:
          if (head.text == "pin") {
            pins.push_back(parse_pin(arg, head));
          } else if (head.text == "sensitivity") {
            sens.push_back(parse_sensitivity(arg, head));
          } else {
            skip_group();
          }
          break;
      }
    }
    expect_punct("}");
    lib.cells.add(assemble_cell(name, at, pins, sens, area));
  }

  PinDecl parse_pin(const std::string& name, const Token& at) {
    PinDecl pin;
    pin.name = name;
    pin.at = at;
    if (name.empty()) lx_.fail(at, "pin needs a name");
    expect_punct("{");
    while (!at_punct("}")) {
      Token head;
      std::string arg;
      switch (statement_head(head, arg)) {
        case Stmt::kAttr: {
          if (head.text == "direction") {
            pin.direction = attr_value().text;
          } else if (head.text == "capacitance") {
            pin.capacitance = attr_number("capacitance");
          } else if (head.text == "function") {
            const Token v = attr_value();
            pin.function = v.text;
            pin.function_at = v;
          } else {
            (void)attr_value();
          }
          break;
        }
        case Stmt::kComplex:
          break;
        case Stmt::kGroup:
          if (head.text == "timing") {
            pin.arcs.push_back(parse_timing(head));
          } else {
            skip_group();
          }
          break;
      }
    }
    expect_punct("}");
    if (pin.direction != "input" && pin.direction != "output")
      lx_.fail(at, "pin " + name +
                       " needs direction: input or output, got: " +
                       (pin.direction.empty() ? "<missing>" : pin.direction));
    return pin;
  }

  Arc parse_timing(const Token& at) {
    Arc arc;
    arc.at = at;
    expect_punct("{");
    while (!at_punct("}")) {
      Token head;
      std::string arg;
      switch (statement_head(head, arg)) {
        case Stmt::kAttr:
          if (head.text == "related_pin")
            arc.related_pin = attr_value().text;
          else if (head.text == "intrinsic_rise")
            arc.intrinsic_rise = attr_number("intrinsic_rise");
          else if (head.text == "intrinsic_fall")
            arc.intrinsic_fall = attr_number("intrinsic_fall");
          else if (head.text == "intrinsic")
            arc.intrinsic_rise = arc.intrinsic_fall =
                attr_number("intrinsic");
          else if (head.text == "rise_resistance")
            arc.rise_resistance = attr_number("rise_resistance");
          else if (head.text == "fall_resistance")
            arc.fall_resistance = attr_number("fall_resistance");
          else
            (void)attr_value();
          break;
        case Stmt::kComplex:
          break;
        case Stmt::kGroup:
          skip_group();
          break;
      }
    }
    expect_punct("}");
    if (arc.related_pin.empty())
      lx_.fail(at, "timing() arc needs a related_pin");
    if (!arc.intrinsic_rise && !arc.intrinsic_fall)
      lx_.fail(at, "timing() arc for pin " + arc.related_pin +
                       " needs intrinsic_rise/intrinsic_fall (or intrinsic)");
    return arc;
  }

  Sensitivity parse_sensitivity(const std::string& param, const Token& at) {
    if (param.empty()) lx_.fail(at, "sensitivity needs a parameter name");
    Sensitivity s;
    s.parameter = param;
    bool have_value = false;
    expect_punct("{");
    while (!at_punct("}")) {
      Token head;
      std::string arg;
      switch (statement_head(head, arg)) {
        case Stmt::kAttr:
          if (head.text == "value") {
            s.value = attr_number("value");
            have_value = true;
          } else {
            (void)attr_value();
          }
          break;
        case Stmt::kComplex:
          break;
        case Stmt::kGroup:
          skip_group();
          break;
      }
    }
    expect_punct("}");
    if (!have_value)
      lx_.fail(at, "sensitivity(" + param + ") needs a value attribute");
    return s;
  }

  CellType assemble_cell(const std::string& name, const Token& at,
                         const std::vector<PinDecl>& pins,
                         std::vector<Sensitivity> sens,
                         std::optional<double> area) {
    std::vector<const PinDecl*> inputs;
    const PinDecl* output = nullptr;
    for (const PinDecl& p : pins) {
      if (p.direction == "input") {
        inputs.push_back(&p);
      } else {
        if (output)
          lx_.fail(p.at, "cell " + name + " has more than one output pin");
        output = &p;
      }
    }
    if (!output) lx_.fail(at, "cell " + name + " has no output pin");
    if (inputs.empty()) lx_.fail(at, "cell " + name + " has no input pins");
    if (output->function.empty())
      lx_.fail(output->at,
               "output pin " + output->name + " of cell " + name +
                   " needs a function attribute");

    const FuncExpr expr =
        FuncParser(output->function, lx_, output->function_at).parse();
    const GateFunc func =
        resolve_func(expr, lx_, output->function_at, output->function);
    // The supported functions are all symmetric, so operand order need not
    // match pin declaration order — only the sets must agree.
    if (expr.operands.size() != inputs.size())
      lx_.fail(output->function_at,
               "function of cell " + name + " uses " +
                   std::to_string(expr.operands.size()) + " operands but " +
                   std::to_string(inputs.size()) + " input pins are declared");
    for (const std::string& op : expr.operands) {
      const bool known =
          std::any_of(inputs.begin(), inputs.end(),
                      [&](const PinDecl* p) { return p->name == op; });
      if (!known)
        lx_.fail(output->function_at,
                 "function of cell " + name +
                     " references undeclared input pin " + op);
    }

    CellType cell;
    cell.name = name;
    cell.func = func;
    cell.num_inputs = inputs.size();
    cell.width = area.value_or(1.0);
    cell.sensitivities = std::move(sens);

    double max_cap = 0.0;
    for (const PinDecl* p : inputs) {
      if (!p->capacitance)
        lx_.fail(p->at, "input pin " + p->name + " of cell " + name +
                            " needs a capacitance attribute");
      max_cap = std::max(max_cap, *p->capacitance);
    }
    cell.input_cap = max_cap;

    cell.intrinsic.resize(inputs.size(), -1.0);
    double max_res = 0.0;
    for (const Arc& a : output->arcs) {
      size_t idx = inputs.size();
      for (size_t i = 0; i < inputs.size(); ++i)
        if (inputs[i]->name == a.related_pin) idx = i;
      if (idx == inputs.size())
        lx_.fail(a.at, "timing() arc of cell " + name +
                           " references unknown input pin " + a.related_pin);
      const double intrinsic = std::max(a.intrinsic_rise.value_or(0.0),
                                        a.intrinsic_fall.value_or(0.0));
      cell.intrinsic[idx] = std::max(cell.intrinsic[idx], intrinsic);
      max_res = std::max({max_res, a.rise_resistance.value_or(0.0),
                          a.fall_resistance.value_or(0.0)});
    }
    for (size_t i = 0; i < inputs.size(); ++i)
      if (cell.intrinsic[i] < 0.0)
        lx_.fail(output->at, "cell " + name + " has no timing() arc for " +
                                 "input pin " + inputs[i]->name);
    cell.drive_res = max_res;
    return cell;
  }

  Lexer lx_;
  Token cur_;
};

}  // namespace

LibertyLibrary read_liberty(std::istream& in, std::string origin) {
  return Parser(in, std::move(origin)).parse();
}

LibertyLibrary read_liberty_string(const std::string& text) {
  std::istringstream in(text);
  return read_liberty(in, "<liberty>");
}

LibertyLibrary read_liberty_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open liberty file: " + path);
  return read_liberty(in, path);
}

namespace {

std::string num(double v) {
  std::ostringstream os;
  os << std::setprecision(17) << v;
  return os.str();
}

std::string pin_name(size_t i) {
  HSSTA_REQUIRE(i < 24, "write_liberty supports at most 24 input pins");
  return std::string(1, static_cast<char>('A' + i));
}

std::string function_string(GateFunc func, size_t n) {
  const char* op = "*";
  bool negated = false;
  switch (func) {
    case GateFunc::kBuf: return pin_name(0);
    case GateFunc::kNot: return "!" + pin_name(0);
    case GateFunc::kAnd: op = "*"; break;
    case GateFunc::kNand: op = "*"; negated = true; break;
    case GateFunc::kOr: op = "+"; break;
    case GateFunc::kNor: op = "+"; negated = true; break;
    case GateFunc::kXor: op = "^"; break;
    case GateFunc::kXnor: op = "^"; negated = true; break;
  }
  std::string body = "(";
  for (size_t i = 0; i < n; ++i) {
    if (i) body += std::string(" ") + op + " ";
    body += pin_name(i);
  }
  body += ")";
  return negated ? body + "'" : body;
}

}  // namespace

void write_liberty(std::ostream& out, const std::string& name,
                   const CellLibrary& lib) {
  out << "/* " << name << " — written by hssta */\n";
  out << "library (" << name << ") {\n";
  for (const CellType* cell : lib.all()) {
    out << "  cell (" << cell->name << ") {\n";
    out << "    area : " << num(cell->width) << ";\n";
    for (size_t i = 0; i < cell->num_inputs; ++i) {
      out << "    pin (" << pin_name(i) << ") { direction : input; "
          << "capacitance : " << num(cell->input_cap) << "; }\n";
    }
    out << "    pin (Y) {\n";
    out << "      direction : output;\n";
    out << "      function : \"" << function_string(cell->func,
                                                    cell->num_inputs)
        << "\";\n";
    for (size_t i = 0; i < cell->num_inputs; ++i) {
      out << "      timing () { related_pin : \"" << pin_name(i)
          << "\"; intrinsic : " << num(cell->intrinsic[i])
          << "; rise_resistance : " << num(cell->drive_res)
          << "; fall_resistance : " << num(cell->drive_res) << "; }\n";
    }
    out << "    }\n";
    for (const Sensitivity& s : cell->sensitivities) {
      out << "    sensitivity (" << s.parameter << ") { value : "
          << num(s.value) << "; }\n";
    }
    out << "  }\n";
  }
  out << "}\n";
}

std::string write_liberty_string(const std::string& name,
                                 const CellLibrary& lib) {
  std::ostringstream os;
  write_liberty(os, name, lib);
  return os.str();
}

}  // namespace hssta::frontend
