#include "hssta/frontend/sequential.hpp"

#include "hssta/frontend/segment.hpp"
#include "hssta/timing/propagate.hpp"
#include "hssta/util/error.hpp"

namespace hssta::frontend {

using netlist::NetId;
using netlist::Netlist;
using netlist::RegId;
using timing::VertexId;

SequentialExtraction extract_sequential(const Netlist& nl,
                                        const timing::BuiltGraph& built) {
  SequentialExtraction out;
  if (!nl.is_sequential()) return out;
  HSSTA_REQUIRE(
      built.register_launch_vertices.size() == nl.num_registers(),
      "built graph does not belong to this netlist (register mismatch)");

  for (const netlist::Register& r : nl.registers()) {
    model::ModelRegister mr;
    mr.name = r.name;
    mr.launch = nl.net_name(r.data_out);
    mr.capture = nl.net_name(r.data_in);
    mr.clock = r.clock == netlist::kNoNet ? "" : nl.net_name(r.clock);
    mr.init = r.init;
    out.registers.push_back(std::move(mr));
  }

  // Register launches/captures by net, for the segment boundary lists.
  constexpr RegId kNone = netlist::kNoReg;
  std::vector<RegId> launch_reg(nl.num_nets(), kNone);
  std::vector<std::vector<RegId>> capture_regs(nl.num_nets());
  for (RegId r = 0; r < nl.num_registers(); ++r) {
    launch_reg[nl.reg(r).data_out] = r;
    capture_regs[nl.reg(r).data_in].push_back(r);
  }

  const Segmentation seg = segment_netlist(nl);
  for (size_t s = 0; s < seg.segments.size(); ++s) {
    const Segment& segment = seg.segments[s];
    // Launch vertices of the segment's register launches, register order
    // within the segment's first-use net order (deterministic).
    std::vector<VertexId> sources;
    for (NetId n : segment.launch_nets)
      if (launch_reg[n] != kNone)
        sources.push_back(built.register_launch_vertices[launch_reg[n]]);
    if (sources.empty()) continue;
    bool has_ff_capture = false;
    for (NetId n : segment.capture_nets)
      if (!capture_regs[n].empty()) has_ff_capture = true;
    if (!has_ff_capture) continue;

    // One serial propagation per segment: flop launches inject arrival 0,
    // the fold below observes at the flop captures. The launch nets of a
    // segment fan out only into that segment (their sink gates all unify
    // into it), so the sweep cannot leak into other segments.
    const timing::PropagationResult arrivals =
        timing::propagate_arrivals(built.graph, sources);

    bool have = false;
    timing::CanonicalForm worst(built.graph.dim());
    timing::MaxDiagnostics diag;
    for (NetId n : segment.capture_nets) {
      for (RegId r : capture_regs[n]) {
        const VertexId v = built.register_capture_vertices[r];
        if (!arrivals.is_valid(v)) continue;  // only PI-fed, no FF path
        if (!have) {
          worst = arrivals.at(v);
          have = true;
        } else {
          timing::statistical_max_accumulate(worst, arrivals.at(v), &diag);
        }
      }
    }
    if (!have) continue;
    out.constraints.push_back(model::SequentialConstraint{
        "seg" + std::to_string(s), std::move(worst)});
  }
  return out;
}

}  // namespace hssta::frontend
