/// \file blif.hpp
/// Reader/writer for the Berkeley Logic Interchange Format (BLIF) subset
/// used by logic-synthesis benchmark suites:
///
///   .model top
///   .inputs a b
///   .outputs f
///   .names a b n1      # SOP cover follows, one row per product term
///   11 1
///   .latch n1 f re clk 0
///   .subckt adder cin=n1 a=a s=f
///   .end
///
/// Supported constructs: `.model` (multiple models per file), `.inputs`,
/// `.outputs`, `.names` (single-output SOP covers, ON-set or OFF-set
/// phase), `.latch` (with optional type/control and init value) and
/// `.subckt` (inlined recursively; child-internal signals are prefixed
/// "<model>$<k>."). `.names` covers are classified onto library gate
/// functions — by truth table up to 10 inputs, by canonical-row shape
/// above — and wide functions decompose through the shared
/// frontend::NetlistBuilder exactly like the .bench reader.
///
/// Registers (`.latch`) become explicit netlist::Register records with
/// their control net and BLIF init encoding preserved (0, 1, 2 = don't
/// care, 3 = unknown; a "NIL" or absent control means unclocked).
///
/// All errors throw hssta::Error formatted "blif parse error at
/// <origin>:<line>: ..." (with a column where one is meaningful).

#pragma once

#include <iosfwd>
#include <string>

#include "hssta/library/cell_library.hpp"
#include "hssta/netlist/netlist.hpp"

namespace hssta::frontend {

struct BlifOptions {
  /// Run Netlist::validate() after elaboration. Off for the static
  /// checker, which lints malformed-but-parseable netlists.
  bool validate = true;
  /// Top model to elaborate; empty selects the first model in the file.
  std::string model;
};

/// Parse BLIF text; `origin` names the source in diagnostics.
[[nodiscard]] netlist::Netlist read_blif(std::istream& in,
                                         const library::CellLibrary& lib,
                                         std::string origin = "<blif>",
                                         const BlifOptions& opts = {});

/// Parse from a string (convenience for tests).
[[nodiscard]] netlist::Netlist read_blif_string(
    const std::string& text, const library::CellLibrary& lib,
    const BlifOptions& opts = {});

/// Parse from a file path; errors name the path and line.
[[nodiscard]] netlist::Netlist read_blif_file(const std::string& path,
                                              const library::CellLibrary& lib,
                                              const BlifOptions& opts = {});

/// Names of the models defined in a BLIF file, in declaration order
/// (cheap pre-scan; used by multi-model tooling and tests).
[[nodiscard]] std::vector<std::string> blif_model_names(std::istream& in);

/// Write a single-model BLIF file. Gates are emitted as canonical SOP
/// covers of their library function; registers as `.latch` lines. The
/// result re-reads into an equivalent netlist.
void write_blif(std::ostream& out, const netlist::Netlist& nl);

/// Write to a string (convenience for tests).
[[nodiscard]] std::string write_blif_string(const netlist::Netlist& nl);

}  // namespace hssta::frontend
