#include "hssta/frontend/netlist_builder.hpp"

#include <algorithm>

#include "hssta/util/error.hpp"

namespace hssta::frontend {

using library::CellType;
using library::GateFunc;
using netlist::NetId;
using netlist::RegId;

NetlistBuilder::NetlistBuilder(const library::CellLibrary& lib,
                               std::string module_name)
    : lib_(lib), nl_(std::move(module_name)) {}

NetId NetlistBuilder::net(const std::string& name) {
  auto it = nets_.find(name);
  if (it != nets_.end()) return it->second;
  const NetId id = nl_.add_net(name);
  nets_.emplace(name, id);
  return id;
}

NetId NetlistBuilder::find_net(const std::string& name) const {
  const auto it = nets_.find(name);
  return it == nets_.end() ? netlist::kNoNet : it->second;
}

void NetlistBuilder::mark_input(const std::string& name) {
  nl_.mark_primary_input(net(name));
}

void NetlistBuilder::mark_output(const std::string& name) {
  nl_.mark_primary_output(net(name));
}

NetId NetlistBuilder::fresh_net(const std::string& base) {
  // Synthesized intermediate net for wide-gate decomposition.
  std::string name = base + "$t" + std::to_string(synth_counter_++);
  while (nets_.count(name))
    name = base + "$t" + std::to_string(synth_counter_++);
  return net(name);
}

const CellType* NetlistBuilder::exact_cell(GateFunc func, size_t arity) const {
  const CellType* c = lib_.find_widest(func, arity);
  return (c && c->num_inputs == arity) ? c : nullptr;
}

std::vector<NetId> NetlistBuilder::reduce_tree(const std::string& base,
                                               GateFunc reduce_func,
                                               std::vector<NetId> ins,
                                               size_t final_width) {
  while (ins.size() > final_width) {
    const CellType* cell = lib_.find_widest(
        reduce_func, std::min(ins.size() - final_width + 1, ins.size()));
    if (!cell || cell->num_inputs < 2)
      throw Error(std::string("library lacks a 2+ input ") +
                  library::gate_func_name(reduce_func) +
                  " cell for decomposition");
    const size_t take = std::min(cell->num_inputs, ins.size());
    const CellType* exact = exact_cell(reduce_func, take);
    HSSTA_ASSERT(exact != nullptr || take == cell->num_inputs,
                 "widest cell must match its own arity");
    const CellType* use = exact ? exact : cell;
    std::vector<NetId> group(ins.begin(), ins.begin() + take);
    ins.erase(ins.begin(), ins.begin() + take);
    const NetId out = fresh_net(base);
    nl_.add_gate(nl_.net_name(out), use, std::move(group), out);
    ins.push_back(out);
  }
  return ins;
}

void NetlistBuilder::add_logic(const std::string& out_name, GateFunc func,
                               std::vector<NetId> ins) {
  const NetId out = net(out_name);
  if (ins.empty()) throw Error("gate with no inputs: " + out_name);

  // Single-input wide functions degenerate to BUF/NOT.
  if (ins.size() == 1 && func != GateFunc::kBuf && func != GateFunc::kNot) {
    const bool inverting = (func == GateFunc::kNand ||
                            func == GateFunc::kNor ||
                            func == GateFunc::kXnor);
    func = inverting ? GateFunc::kNot : GateFunc::kBuf;
  }

  if (const CellType* cell = exact_cell(func, ins.size())) {
    nl_.add_gate(out_name, cell, std::move(ins), out);
    return;
  }

  // Decompose. Inverting functions reduce with their non-inverting dual
  // and invert only at the final stage, preserving logic exactly.
  GateFunc reduce_func = func;
  switch (func) {
    case GateFunc::kNand: reduce_func = GateFunc::kAnd; break;
    case GateFunc::kNor: reduce_func = GateFunc::kOr; break;
    case GateFunc::kXnor: reduce_func = GateFunc::kXor; break;
    default: break;
  }
  // Find the widest final cell of the requested function.
  const CellType* final_cell = lib_.find_widest(func, ins.size());
  if (!final_cell) {
    // No cell of the function at all (e.g. XNOR absent): reduce fully with
    // the dual and invert.
    const CellType* inv = lib_.find_widest(GateFunc::kNot, 1);
    if (!inv) throw Error("library lacks an inverter for decomposition");
    std::vector<NetId> rest = reduce_tree(out_name, reduce_func,
                                          std::move(ins), 1);
    nl_.add_gate(out_name, inv, {rest[0]}, out);
    return;
  }
  std::vector<NetId> rest = reduce_tree(out_name, reduce_func, std::move(ins),
                                        final_cell->num_inputs);
  const CellType* last = exact_cell(func, rest.size());
  if (!last) throw Error("internal: no exact cell after reduction");
  nl_.add_gate(out_name, last, std::move(rest), out);
}

RegId NetlistBuilder::add_register(const std::string& data_in,
                                   const std::string& data_out,
                                   const std::string& clock, int init) {
  const NetId d = net(data_in);
  const NetId q = net(data_out);
  const NetId c = clock.empty() ? netlist::kNoNet : net(clock);
  return nl_.add_register(data_out, d, q, c, init);
}

netlist::Netlist NetlistBuilder::finish(bool validate) {
  if (validate) nl_.validate();
  return std::move(nl_);
}

}  // namespace hssta::frontend
