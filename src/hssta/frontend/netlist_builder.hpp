/// \file netlist_builder.hpp
/// frontend::NetlistBuilder — the shared construction core of every
/// netlist front end (.bench, BLIF). It owns the netlist under
/// construction, the name -> net map, register creation and the wide-gate
/// decomposition machinery (library-sized reduction trees with synthesized
/// "$t" intermediate nets), so each parser reduces to grammar handling.
///
/// Builder methods throw hssta::Error with a bare message; the calling
/// parser wraps the message with its own origin:line (and column)
/// location. That keeps diagnostics format-specific while the structural
/// rules live in exactly one place.

#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "hssta/library/cell_library.hpp"
#include "hssta/netlist/netlist.hpp"

namespace hssta::frontend {

class NetlistBuilder {
 public:
  NetlistBuilder(const library::CellLibrary& lib, std::string module_name);

  /// Net id by name, creating the net on first reference.
  netlist::NetId net(const std::string& name);
  /// Net id by name, or netlist::kNoNet when never referenced.
  [[nodiscard]] netlist::NetId find_net(const std::string& name) const;

  /// Declare a net (by name) a primary input / primary output.
  void mark_input(const std::string& name);
  void mark_output(const std::string& name);

  /// Add logic computing `func` over `ins` onto the net named `out_name`,
  /// decomposing wide functions into library-sized trees (inverting
  /// functions reduce with their non-inverting dual and invert only at the
  /// final stage). Single-input wide functions degenerate to BUF/NOT.
  void add_logic(const std::string& out_name, library::GateFunc func,
                 std::vector<netlist::NetId> ins);

  /// Add a register capturing `data_in` and driving `data_out` (both by
  /// name; nets are created on first reference). `clock` may be empty for
  /// unclocked styles. The register is named after its output net.
  netlist::RegId add_register(const std::string& data_in,
                              const std::string& data_out,
                              const std::string& clock, int init);

  /// A fresh synthesized net ("base$tN") for decomposition intermediates.
  netlist::NetId fresh_net(const std::string& base);

  [[nodiscard]] const netlist::Netlist& netlist() const { return nl_; }
  [[nodiscard]] const library::CellLibrary& library() const { return lib_; }

  /// Finish construction: optionally run Netlist::validate() and release
  /// the netlist. The builder is spent afterwards.
  [[nodiscard]] netlist::Netlist finish(bool validate);

 private:
  [[nodiscard]] const library::CellType* exact_cell(library::GateFunc func,
                                                    size_t arity) const;
  std::vector<netlist::NetId> reduce_tree(const std::string& base,
                                          library::GateFunc reduce_func,
                                          std::vector<netlist::NetId> ins,
                                          size_t final_width);

  const library::CellLibrary& lib_;
  netlist::Netlist nl_;
  // det-ok: name -> id lookup only; the netlist is built in file order and
  // this map is never iterated.
  std::unordered_map<std::string, netlist::NetId> nets_;
  int synth_counter_ = 0;
};

}  // namespace hssta::frontend
