#include "hssta/frontend/blif.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <optional>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "hssta/frontend/netlist_builder.hpp"
#include "hssta/util/error.hpp"
#include "hssta/util/strings.hpp"

namespace hssta::frontend {

namespace {

using library::CellLibrary;
using library::GateFunc;
using netlist::Netlist;

[[noreturn]] void fail_at(const std::string& origin, int line,
                          const std::string& msg) {
  std::ostringstream os;
  os << "blif parse error at " << origin << ':' << line << ": " << msg;
  throw Error(os.str());
}

[[noreturn]] void fail_at(const std::string& origin, int line, int col,
                          const std::string& msg) {
  std::ostringstream os;
  os << "blif parse error at " << origin << ':' << line << ':' << col << ": "
     << msg;
  throw Error(os.str());
}

/// --- pass 1: logical lines -> per-model IR -----------------------------

struct NamesDecl {
  std::vector<std::string> signals;  ///< inputs then the output (last)
  std::vector<std::string> rows;     ///< input plane of each cover row
  char phase = '1';                  ///< output phase of every row
  int line = 0;
};

struct LatchDecl {
  std::string input;
  std::string output;
  std::string control;  ///< empty = unclocked ("NIL" or absent)
  int init = 3;
  int line = 0;
};

struct SubcktDecl {
  std::string model;
  std::vector<std::pair<std::string, std::string>> binds;  ///< formal=actual
  int line = 0;
};

struct BlifModel {
  std::string name;
  int line = 0;
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::vector<NamesDecl> names;
  std::vector<LatchDecl> latches;
  std::vector<SubcktDecl> subckts;
  bool ended = false;
};

struct LogicalLine {
  std::string text;
  int line = 0;  ///< first physical line number
};

/// Strip comments, join backslash continuations, drop blank lines.
std::vector<LogicalLine> logical_lines(std::istream& in) {
  std::vector<LogicalLine> out;
  std::string physical;
  int line_no = 0;
  std::string pending;
  int pending_line = 0;
  while (std::getline(in, physical)) {
    ++line_no;
    const size_t hash = physical.find('#');
    if (hash != std::string::npos) physical.resize(hash);
    std::string piece{trim(physical)};
    const bool continued = !piece.empty() && piece.back() == '\\';
    if (continued) piece = std::string(trim(piece.substr(0, piece.size() - 1)));
    if (pending.empty()) {
      pending = piece;
      pending_line = line_no;
    } else if (!piece.empty()) {
      pending += ' ';
      pending += piece;
    }
    if (!continued && !pending.empty()) {
      out.push_back({std::move(pending), pending_line});
      pending.clear();
    }
  }
  if (!pending.empty()) out.push_back({std::move(pending), pending_line});
  return out;
}

int parse_latch_init(const std::string& origin, int line,
                     const std::string& tok) {
  if (tok.size() == 1 && tok[0] >= '0' && tok[0] <= '3') return tok[0] - '0';
  fail_at(origin, line, "latch init value must be 0..3, got: " + tok);
}

std::vector<BlifModel> parse_models(std::istream& in,
                                    const std::string& origin) {
  std::vector<BlifModel> models;
  BlifModel* cur = nullptr;
  NamesDecl* open_names = nullptr;  ///< .names still accepting cover rows

  for (LogicalLine& ll : logical_lines(in)) {
    const std::string& text = ll.text;
    const int line = ll.line;
    std::vector<std::string> toks = split_ws(text);
    HSSTA_ASSERT(!toks.empty(), "logical lines are non-blank");
    const std::string& head = toks[0];

    if (head[0] != '.') {
      // A cover row for the open .names, e.g. "1-0 1".
      if (!open_names)
        fail_at(origin, line, "expected a directive, got: " + text);
      const size_t n = open_names->signals.size() - 1;
      std::string plane;
      char out_char;
      if (n == 0) {
        fail_at(origin, open_names->line,
                "constant .names (no inputs) is unsupported: " +
                    open_names->signals.back());
      }
      if (toks.size() != 2)
        fail_at(origin, line,
                "cover row needs an input plane and an output value: " + text);
      plane = toks[0];
      if (toks[1].size() != 1)
        fail_at(origin, line, "cover row output must be 0 or 1: " + toks[1]);
      out_char = toks[1][0];
      if (plane.size() != n)
        fail_at(origin, line,
                "cover row width " + std::to_string(plane.size()) +
                    " does not match " + std::to_string(n) + " inputs");
      for (size_t i = 0; i < plane.size(); ++i)
        if (plane[i] != '0' && plane[i] != '1' && plane[i] != '-')
          fail_at(origin, line, static_cast<int>(i + 1),
                  std::string("cover row character must be 0, 1 or -: ") +
                      plane[i]);
      if (out_char != '0' && out_char != '1')
        fail_at(origin, line, "cover row output must be 0 or 1: " + toks[1]);
      if (open_names->rows.empty())
        open_names->phase = out_char;
      else if (open_names->phase != out_char)
        fail_at(origin, line,
                "mixed output phases in one .names cover (all rows must "
                "share the output value)");
      open_names->rows.push_back(std::move(plane));
      continue;
    }

    // A directive. .names covers end at the next directive.
    if (head != ".model" && cur == nullptr)
      fail_at(origin, line, "expected .model before " + head);

    if (head == ".model") {
      if (cur && !cur->ended)
        fail_at(origin, line,
                "missing .end before new model (model " + cur->name +
                    " is still open)");
      if (toks.size() != 2)
        fail_at(origin, line, ".model takes exactly one name");
      for (const BlifModel& m : models)
        if (m.name == toks[1])
          fail_at(origin, line, "duplicate model name: " + toks[1]);
      models.push_back(BlifModel{});
      cur = &models.back();
      cur->name = toks[1];
      cur->line = line;
      open_names = nullptr;
      continue;
    }
    if (cur->ended)
      fail_at(origin, line,
              head + " after .end of model " + cur->name +
                  " (start a new .model first)");
    open_names = nullptr;

    if (head == ".inputs" || head == ".outputs") {
      auto& list = (head == ".inputs") ? cur->inputs : cur->outputs;
      for (size_t i = 1; i < toks.size(); ++i)
        list.push_back(std::move(toks[i]));
      continue;
    }
    if (head == ".names") {
      if (toks.size() < 2)
        fail_at(origin, line, ".names needs at least an output signal");
      NamesDecl d;
      d.signals.assign(toks.begin() + 1, toks.end());
      d.line = line;
      cur->names.push_back(std::move(d));
      open_names = &cur->names.back();
      continue;
    }
    if (head == ".latch") {
      // .latch <input> <output> [<type> <control>] [<init>]
      LatchDecl d;
      d.line = line;
      if (toks.size() < 3 || toks.size() > 6)
        fail_at(origin, line,
                ".latch takes input, output, optional type+control and "
                "optional init, got " +
                    std::to_string(toks.size() - 1) + " operands");
      d.input = toks[1];
      d.output = toks[2];
      size_t next = 3;
      if (toks.size() >= 5) {
        const std::string type = to_lower(toks[3]);
        if (type != "fe" && type != "re" && type != "ah" && type != "al" &&
            type != "as")
          fail_at(origin, line,
                  "unknown latch type (want fe/re/ah/al/as): " + toks[3]);
        if (toks[4] != "NIL") d.control = toks[4];
        next = 5;
      }
      if (next < toks.size())
        d.init = parse_latch_init(origin, line, toks[next++]);
      if (next != toks.size())
        fail_at(origin, line, "trailing operands on .latch: " + toks[next]);
      cur->latches.push_back(std::move(d));
      continue;
    }
    if (head == ".subckt") {
      if (toks.size() < 2)
        fail_at(origin, line, ".subckt needs a model name");
      SubcktDecl d;
      d.line = line;
      d.model = toks[1];
      for (size_t i = 2; i < toks.size(); ++i) {
        const size_t eq = toks[i].find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 == toks[i].size())
          fail_at(origin, line,
                  ".subckt binding must be formal=actual: " + toks[i]);
        std::string formal = toks[i].substr(0, eq);
        for (const auto& [f, a] : d.binds)
          if (f == formal)
            fail_at(origin, line, "duplicate .subckt binding for pin " + f);
        d.binds.emplace_back(std::move(formal), toks[i].substr(eq + 1));
      }
      cur->subckts.push_back(std::move(d));
      continue;
    }
    if (head == ".end") {
      if (toks.size() != 1)
        fail_at(origin, line, "trailing operands on .end");
      cur->ended = true;
      continue;
    }
    fail_at(origin, line, 1, "unsupported BLIF construct: " + head);
  }

  if (models.empty()) fail_at(origin, 1, "file defines no .model");
  if (!models.back().ended)
    fail_at(origin, models.back().line,
            "missing .end for model " + models.back().name);
  return models;
}

/// --- cover -> gate function classification ------------------------------

bool row_matches(const std::string& plane, unsigned combo) {
  for (size_t i = 0; i < plane.size(); ++i) {
    const bool bit = ((combo >> i) & 1u) != 0;
    if (plane[i] == '1' && !bit) return false;
    if (plane[i] == '0' && bit) return false;
  }
  return true;
}

/// Truth-table match for n <= 10 inputs: evaluate the cover on every input
/// combination and compare against each library gate function.
std::optional<GateFunc> classify_by_table(const NamesDecl& d, size_t n) {
  std::vector<bool> table(size_t{1} << n);
  for (unsigned combo = 0; combo < table.size(); ++combo) {
    bool in_cover = false;
    for (const std::string& row : d.rows)
      if (row_matches(row, combo)) {
        in_cover = true;
        break;
      }
    table[combo] = in_cover == (d.phase == '1');
  }
  static constexpr GateFunc kAll[] = {
      GateFunc::kBuf, GateFunc::kNot, GateFunc::kAnd, GateFunc::kNand,
      GateFunc::kOr,  GateFunc::kNor, GateFunc::kXor, GateFunc::kXnor};
  std::vector<bool> ins(n);
  for (GateFunc f : kAll) {
    if (n == 1 &&
        !(f == GateFunc::kBuf || f == GateFunc::kNot))
      continue;
    if (n >= 2 && (f == GateFunc::kBuf || f == GateFunc::kNot)) continue;
    bool all_match = true;
    for (unsigned combo = 0; combo < table.size() && all_match; ++combo) {
      for (size_t i = 0; i < n; ++i) ins[i] = ((combo >> i) & 1u) != 0;
      // std::vector<bool> cannot back a span; copy into a small buffer.
      bool buf[10];
      for (size_t i = 0; i < n; ++i) buf[i] = ins[i];
      if (library::eval_gate(f, std::span<const bool>(buf, n)) != table[combo])
        all_match = false;
    }
    if (all_match) return f;
  }
  return std::nullopt;
}

/// Syntactic match for wide covers (n > 10): recognize the canonical SOP
/// row shapes of AND/NAND/OR/NOR in either output phase.
std::optional<GateFunc> classify_by_shape(const NamesDecl& d, size_t n) {
  const bool on_set = d.phase == '1';
  auto all_are = [&](char c) {
    return d.rows.size() == 1 &&
           std::all_of(d.rows[0].begin(), d.rows[0].end(),
                       [&](char p) { return p == c; });
  };
  auto one_hot = [&](char c) {
    // n rows, row i has `c` at position i and '-' elsewhere (any order).
    if (d.rows.size() != n) return false;
    std::vector<bool> seen(n, false);
    for (const std::string& row : d.rows) {
      size_t pos = std::string::npos;
      for (size_t i = 0; i < row.size(); ++i) {
        if (row[i] == c) {
          if (pos != std::string::npos) return false;
          pos = i;
        } else if (row[i] != '-') {
          return false;
        }
      }
      if (pos == std::string::npos || seen[pos]) return false;
      seen[pos] = true;
    }
    return true;
  };
  if (all_are('1')) return on_set ? GateFunc::kAnd : GateFunc::kNand;
  if (all_are('0')) return on_set ? GateFunc::kNor : GateFunc::kOr;
  if (one_hot('1')) return on_set ? GateFunc::kOr : GateFunc::kNor;
  if (one_hot('0')) return on_set ? GateFunc::kNand : GateFunc::kAnd;
  return std::nullopt;
}

GateFunc classify_cover(const std::string& origin, const NamesDecl& d) {
  const size_t n = d.signals.size() - 1;
  if (d.rows.empty())
    fail_at(origin, d.line,
            ".names cover for " + d.signals.back() +
                " has no rows (constants are unsupported)");
  std::optional<GateFunc> f =
      n <= 10 ? classify_by_table(d, n) : classify_by_shape(d, n);
  if (!f)
    fail_at(origin, d.line,
            ".names cover for " + d.signals.back() +
                " does not match any library gate function");
  return *f;
}

/// --- pass 2: elaboration ------------------------------------------------

struct Elaborator {
  const std::vector<BlifModel>& models;
  const std::string& origin;
  NetlistBuilder& b;
  // det-ok: name -> index lookup only, never iterated.
  std::unordered_map<std::string, size_t> by_name;
  std::vector<std::string> stack;  ///< models being expanded (cycle check)
  int instance_counter = 0;

  Elaborator(const std::vector<BlifModel>& ms, const std::string& org,
             NetlistBuilder& builder)
      : models(ms), origin(org), b(builder) {
    for (size_t i = 0; i < ms.size(); ++i) by_name.emplace(ms[i].name, i);
  }

  /// Expand one model body. `rename` maps the model's signal names to
  /// parent-scope net names; unmapped signals are the model's internals
  /// and get `prefix` prepended.
  void expand(const BlifModel& m, const std::string& prefix,
              // det-ok: rename is looked up per signal, never iterated.
              const std::unordered_map<std::string, std::string>& rename) {
    auto resolve = [&](const std::string& s) -> std::string {
      const auto it = rename.find(s);
      return it != rename.end() ? it->second : prefix + s;
    };

    for (const NamesDecl& d : m.names) {
      const GateFunc func = classify_cover(origin, d);
      std::vector<netlist::NetId> ins;
      ins.reserve(d.signals.size() - 1);
      for (size_t i = 0; i + 1 < d.signals.size(); ++i)
        ins.push_back(b.net(resolve(d.signals[i])));
      try {
        b.add_logic(resolve(d.signals.back()), func, std::move(ins));
      } catch (const Error& e) {
        fail_at(origin, d.line, e.what());
      }
    }
    for (const LatchDecl& d : m.latches) {
      try {
        b.add_register(resolve(d.input), resolve(d.output),
                       d.control.empty() ? "" : resolve(d.control), d.init);
      } catch (const Error& e) {
        fail_at(origin, d.line, e.what());
      }
    }
    for (const SubcktDecl& d : m.subckts) {
      const auto it = by_name.find(d.model);
      if (it == by_name.end())
        fail_at(origin, d.line,
                ".subckt references undefined model: " + d.model);
      const BlifModel& child = models[it->second];
      if (std::find(stack.begin(), stack.end(), child.name) != stack.end())
        fail_at(origin, d.line,
                "recursive .subckt instantiation of model " + child.name);

      // Formal pins are the child's declared inputs and outputs.
      // det-ok: membership checks only, never iterated.
      std::unordered_map<std::string, std::string> child_rename;
      for (const auto& [formal, actual] : d.binds) {
        const bool is_in = std::find(child.inputs.begin(), child.inputs.end(),
                                     formal) != child.inputs.end();
        const bool is_out =
            std::find(child.outputs.begin(), child.outputs.end(), formal) !=
            child.outputs.end();
        if (!is_in && !is_out)
          fail_at(origin, d.line,
                  "model " + child.name + " has no pin named " + formal);
        child_rename.emplace(formal, resolve(actual));
      }
      for (const std::string& pin : child.inputs)
        if (!child_rename.count(pin))
          fail_at(origin, d.line,
                  ".subckt leaves input pin " + pin + " of model " +
                      child.name + " unbound");
      // Unbound outputs become dangling prefixed internals (legal BLIF).
      const std::string child_prefix =
          child.name + "$" + std::to_string(instance_counter++) + ".";
      stack.push_back(child.name);
      expand(child, child_prefix, child_rename);
      stack.pop_back();
    }
  }
};

}  // namespace

Netlist read_blif(std::istream& in, const CellLibrary& lib,
                  std::string origin, const BlifOptions& opts) {
  const std::vector<BlifModel> models = parse_models(in, origin);

  const BlifModel* top = &models.front();
  if (!opts.model.empty()) {
    top = nullptr;
    for (const BlifModel& m : models)
      if (m.name == opts.model) top = &m;
    if (!top) {
      std::ostringstream os;
      os << "blif error: no model named " << opts.model << " in " << origin
         << " (file defines:";
      for (const BlifModel& m : models) os << ' ' << m.name;
      os << ')';
      throw Error(os.str());
    }
  }
  if (top->outputs.empty())
    fail_at(origin, top->line,
            "model " + top->name + " declares no .outputs");

  NetlistBuilder b(lib, top->name);
  // PI declaration order = .inputs order; nets exist before the body so a
  // gate driving a declared input reports "net already driven".
  for (const std::string& s : top->inputs) {
    try {
      b.mark_input(s);
    } catch (const Error& e) {
      fail_at(origin, top->line, e.what());
    }
  }

  Elaborator el(models, origin, b);
  el.stack.push_back(top->name);
  el.expand(*top, "", {});

  for (const std::string& s : top->outputs) b.mark_output(s);

  try {
    return b.finish(opts.validate);
  } catch (const Error& e) {
    fail_at(origin, top->line, std::string("model ") + top->name +
                                   " failed structural validation: " +
                                   e.what());
  }
}

Netlist read_blif_string(const std::string& text, const CellLibrary& lib,
                         const BlifOptions& opts) {
  std::istringstream in(text);
  return read_blif(in, lib, "<blif>", opts);
}

Netlist read_blif_file(const std::string& path, const CellLibrary& lib,
                       const BlifOptions& opts) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open blif file: " + path);
  return read_blif(in, lib, path, opts);
}

std::vector<std::string> blif_model_names(std::istream& in) {
  std::vector<std::string> names;
  for (const LogicalLine& ll : logical_lines(in)) {
    const std::vector<std::string> toks = split_ws(ll.text);
    if (toks.size() == 2 && toks[0] == ".model") names.push_back(toks[1]);
  }
  return names;
}

namespace {

/// Canonical SOP cover of a gate function, one row per line. XOR/XNOR
/// enumerate parity minterms, so they are only emitted for library-sized
/// arities (fine: gates always carry library arities).
void write_cover(std::ostream& out, GateFunc func, size_t n) {
  const std::string ones(n, '1');
  const std::string zeros(n, '0');
  switch (func) {
    case GateFunc::kBuf:
      out << "1 1\n";
      return;
    case GateFunc::kNot:
      out << "0 1\n";
      return;
    case GateFunc::kAnd:
      out << ones << " 1\n";
      return;
    case GateFunc::kNand:
      out << ones << " 0\n";
      return;
    case GateFunc::kOr:
      for (size_t i = 0; i < n; ++i) {
        std::string row(n, '-');
        row[i] = '1';
        out << row << " 1\n";
      }
      return;
    case GateFunc::kNor:
      out << zeros << " 1\n";
      return;
    case GateFunc::kXor:
    case GateFunc::kXnor: {
      const bool want_odd = func == GateFunc::kXor;
      for (unsigned combo = 0; combo < (1u << n); ++combo) {
        const bool odd = (static_cast<unsigned>(__builtin_popcount(combo)) &
                          1u) != 0;
        if (odd != want_odd) continue;
        std::string row(n, '0');
        for (size_t i = 0; i < n; ++i)
          if ((combo >> i) & 1u) row[i] = '1';
        out << row << " 1\n";
      }
      return;
    }
  }
  HSSTA_ASSERT(false, "unhandled gate function in write_cover");
}

}  // namespace

void write_blif(std::ostream& out, const Netlist& nl) {
  out << "# " << nl.name() << " — written by hssta\n";
  out << ".model " << nl.name() << '\n';
  out << ".inputs";
  for (netlist::NetId n : nl.primary_inputs()) out << ' ' << nl.net_name(n);
  out << '\n';
  out << ".outputs";
  for (netlist::NetId n : nl.primary_outputs()) out << ' ' << nl.net_name(n);
  out << '\n';
  for (const netlist::Register& r : nl.registers()) {
    out << ".latch " << nl.net_name(r.data_in) << ' '
        << nl.net_name(r.data_out);
    if (r.clock != netlist::kNoNet) out << " re " << nl.net_name(r.clock);
    out << ' ' << r.init << '\n';
  }
  for (netlist::GateId g = 0; g < nl.num_gates(); ++g) {
    const netlist::Gate& gate = nl.gate(g);
    out << ".names";
    for (netlist::NetId f : gate.fanins) out << ' ' << nl.net_name(f);
    out << ' ' << nl.net_name(gate.output) << '\n';
    write_cover(out, gate.type->func, gate.fanins.size());
  }
  out << ".end\n";
}

std::string write_blif_string(const Netlist& nl) {
  std::ostringstream os;
  write_blif(os, nl);
  return os.str();
}

}  // namespace hssta::frontend
