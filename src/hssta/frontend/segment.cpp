#include "hssta/frontend/segment.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "hssta/util/error.hpp"

namespace hssta::frontend {

using netlist::GateId;
using netlist::kNoGate;
using netlist::NetId;
using netlist::Netlist;

namespace {

struct UnionFind {
  std::vector<uint32_t> parent;

  explicit UnionFind(size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0u);
  }

  uint32_t find(uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];  // path halving
      x = parent[x];
    }
    return x;
  }

  void unite(uint32_t a, uint32_t b) {
    a = find(a);
    b = find(b);
    // Always attach the larger root under the smaller one, so every root
    // is its component's smallest gate id (deterministic segment order).
    if (a == b) return;
    if (a > b) std::swap(a, b);
    parent[b] = a;
  }
};

}  // namespace

Segmentation segment_netlist(const Netlist& nl) {
  const size_t num_gates = nl.num_gates();
  UnionFind uf(num_gates);

  // Connectivity: all gates touching a net (its driver and its sinks)
  // share a segment. Registers never appear here — their data_in and
  // data_out are distinct nets — so clock boundaries cut automatically.
  const auto& sinks = nl.net_sinks();
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    const GateId driver = nl.driver(n);
    GateId anchor = driver;
    for (GateId s : sinks[n]) {
      if (anchor == kNoGate)
        anchor = s;
      else
        uf.unite(anchor, s);
    }
  }

  // Roots in ascending order are the segment ids.
  Segmentation seg;
  seg.gate_segment.assign(num_gates, 0);
  std::vector<uint32_t> root_segment(num_gates, 0);
  for (GateId g = 0; g < num_gates; ++g) {
    if (uf.find(g) == g) {
      root_segment[g] = static_cast<uint32_t>(seg.segments.size());
      seg.segments.emplace_back();
    }
  }
  for (GateId g = 0; g < num_gates; ++g) {
    const uint32_t s = root_segment[uf.find(g)];
    seg.gate_segment[g] = s;
    seg.segments[s].gates.push_back(g);
  }

  // Boundary nets, deduplicated with a per-net "claimed by segment" mark.
  std::vector<netlist::Register> const& regs = nl.registers();
  std::vector<uint8_t> is_reg_data_in(nl.num_nets(), 0);
  for (const netlist::Register& r : regs) is_reg_data_in[r.data_in] = 1;

  constexpr uint32_t kUnclaimed = std::numeric_limits<uint32_t>::max();
  std::vector<uint32_t> launch_claim(nl.num_nets(), kUnclaimed);
  std::vector<uint32_t> capture_claim(nl.num_nets(), kUnclaimed);
  for (uint32_t s = 0; s < seg.segments.size(); ++s) {
    Segment& segment = seg.segments[s];
    for (GateId g : segment.gates) {
      const netlist::Gate& gate = nl.gate(g);
      for (NetId f : gate.fanins) {
        const bool external =
            nl.is_primary_input(f) || nl.is_register_output(f);
        if (external && launch_claim[f] != s) {
          launch_claim[f] = s;
          segment.launch_nets.push_back(f);
        }
      }
      const NetId out = gate.output;
      const bool boundary = nl.is_primary_output(out) || is_reg_data_in[out];
      if (boundary && capture_claim[out] != s) {
        capture_claim[out] = s;
        segment.capture_nets.push_back(out);
      }
    }
  }
  return seg;
}

}  // namespace hssta::frontend
