#include "hssta/hier/design_grid.hpp"

#include <cmath>
#include <limits>

#include "hssta/util/error.hpp"

namespace hssta::hier {

using placement::Point;
using variation::GridGeometry;
using variation::GridPartition;

namespace {

bool inside(const Point& p, const Point& origin, const placement::Die& die) {
  return p.x >= origin.x && p.x <= origin.x + die.width && p.y >= origin.y &&
         p.y <= origin.y + die.height;
}

}  // namespace

size_t DesignGrid::grid_of(const Point& p, const HierDesign& design) const {
  const auto& instances = design.instances();
  for (size_t t = 0; t < instances.size(); ++t) {
    const ModuleInstance& inst = instances[t];
    if (!inside(p, inst.origin, inst.model->die())) continue;
    const Point local{p.x - inst.origin.x, p.y - inst.origin.y};
    return instance_grids[t][inst.model->variation().partition.grid_of(local)];
  }
  // Not inside any module: nearest center, preferring filler grids.
  HSSTA_REQUIRE(!geometry.centers.empty(), "design grid is empty");
  const size_t begin_filler = geometry.size() - filler_count;
  size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  const size_t start = filler_count > 0 ? begin_filler : 0;
  const size_t stop = filler_count > 0 ? geometry.size() : geometry.size();
  for (size_t g = start; g < stop; ++g) {
    const double dx = geometry.centers[g].x - p.x;
    const double dy = geometry.centers[g].y - p.y;
    const double d = dx * dx + dy * dy;
    if (d < best_d) {
      best_d = d;
      best = g;
    }
  }
  return best;
}

DesignGrid build_design_grid(const HierDesign& design) {
  design.validate();
  const auto& instances = design.instances();

  // All modules must share the default grid pitch.
  const GridPartition& first = instances.front().model->variation().partition;
  const double unit =
      std::sqrt(first.pitch_x() * first.pitch_y());
  for (const ModuleInstance& inst : instances) {
    const GridPartition& part = inst.model->variation().partition;
    const double u = std::sqrt(part.pitch_x() * part.pitch_y());
    HSSTA_REQUIRE(std::abs(u - unit) <= 1e-6 * unit,
                  "instances must share one grid pitch (got a mismatch on " +
                      inst.name + ")");
  }

  DesignGrid out;
  out.geometry.unit = unit;

  // Module grids, translated to their instance origins.
  for (const ModuleInstance& inst : instances) {
    const GridPartition& part = inst.model->variation().partition;
    std::vector<size_t> map;
    map.reserve(part.num_grids());
    for (size_t gidx = 0; gidx < part.num_grids(); ++gidx) {
      const Point c = part.center(gidx);
      map.push_back(out.geometry.centers.size());
      out.geometry.centers.push_back(
          Point{c.x + inst.origin.x, c.y + inst.origin.y});
    }
    out.instance_grids.push_back(std::move(map));
  }

  // Filler: default-pitch regular grid over the die, keeping cells whose
  // center lies outside every module outline.
  const placement::Die& die = design.die();
  const size_t fx = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(die.width / first.pitch_x())));
  const size_t fy = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(die.height / first.pitch_y())));
  const GridPartition filler(die, fx, fy);
  for (size_t gidx = 0; gidx < filler.num_grids(); ++gidx) {
    const Point c = filler.center(gidx);
    bool covered = false;
    for (const ModuleInstance& inst : instances)
      covered = covered || inside(c, inst.origin, inst.model->die());
    if (!covered) {
      out.geometry.centers.push_back(c);
      ++out.filler_count;
    }
  }
  return out;
}

std::shared_ptr<const variation::VariationSpace> build_design_space(
    const HierDesign& design, const DesignGrid& grid,
    linalg::PcaOptions pca_opts) {
  const variation::VariationSpace& ref =
      *design.instances().front().model->variation().space;
  // All instances must analyze the same parameters under the same profile.
  for (const ModuleInstance& inst : design.instances()) {
    const variation::VariationSpace& s = *inst.model->variation().space;
    HSSTA_REQUIRE(s.num_params() == ref.num_params(),
                  "instances disagree on the parameter set");
    for (size_t p = 0; p < ref.num_params(); ++p)
      HSSTA_REQUIRE(s.parameters().at(p).name == ref.parameters().at(p).name &&
                        std::abs(s.parameters().at(p).sigma_rel -
                                 ref.parameters().at(p).sigma_rel) < 1e-12,
                    "instances disagree on parameter " +
                        ref.parameters().at(p).name);
    const auto& ca = s.correlation_model().config();
    const auto& cb = ref.correlation_model().config();
    HSSTA_REQUIRE(std::abs(ca.rho_neighbor - cb.rho_neighbor) < 1e-12 &&
                      std::abs(ca.rho_global - cb.rho_global) < 1e-12 &&
                      std::abs(ca.cutoff - cb.cutoff) < 1e-12,
                  "instances disagree on the correlation profile");
  }
  return std::make_shared<const variation::VariationSpace>(
      ref.parameters(), grid.geometry, ref.correlation_model().config(),
      pca_opts);
}

}  // namespace hssta::hier
