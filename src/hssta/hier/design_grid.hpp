/// \file design_grid.hpp
/// The heterogeneous design-level grid partition of paper Section V
/// (Fig. 4): the die area covered by each module instance re-uses that
/// module's characterization grids (translated to the instance origin, so
/// the design-level correlation sub-matrix of a module equals its
/// characterization matrix exactly); the remaining area is covered by
/// default-pitch filler grids.
///
/// All modules must share one grid pitch (the paper's "default grid size")
/// — with differing pitches the sub-matrix identity behind the variable
/// replacement (eq. 18) would no longer hold.

#pragma once

#include <vector>

#include "hssta/hier/design.hpp"
#include "hssta/variation/grid.hpp"
#include "hssta/variation/space.hpp"

namespace hssta::hier {

struct DesignGrid {
  /// All design-level grid centers; modules first (instance order, module
  /// grid order within), then filler grids.
  variation::GridGeometry geometry;
  /// Per instance: module grid index -> design grid index.
  std::vector<std::vector<size_t>> instance_grids;
  size_t filler_count = 0;

  /// Design grid holding a die location: module grids win inside module
  /// outlines, otherwise the nearest filler (or overall nearest) center.
  [[nodiscard]] size_t grid_of(const placement::Point& p,
                               const HierDesign& design) const;
};

/// Build the heterogeneous partition for a design.
[[nodiscard]] DesignGrid build_design_grid(const HierDesign& design);

/// Build the design-level variation space over the heterogeneous grids
/// (the PCA of paper eq. 16). Parameter set and correlation profile are
/// taken from the instances' module spaces, which must agree.
[[nodiscard]] std::shared_ptr<const variation::VariationSpace>
build_design_space(const HierDesign& design, const DesignGrid& grid,
                   linalg::PcaOptions pca_opts = {});

}  // namespace hssta::hier
