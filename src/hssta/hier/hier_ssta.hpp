/// \file hier_ssta.hpp
/// Hierarchical statistical timing analysis at design level (paper
/// Section V, Fig. 5):
///   1. partition the design die with heterogeneous grids,
///   2. PCA-decompose the design-level correlated variables,
///   3. replace each instance's independent variables via eq. 19,
///   4. stitch the model graphs and propagate arrival times.
///
/// Two correlation treatments are provided, matching the paper's Fig. 7
/// comparison: the proposed replacement (module locals become design-level
/// shared variables) and the global-only baseline (each instance keeps
/// private spatial variables; only the per-parameter global variables are
/// shared).

#pragma once

#include <memory>
#include <vector>

#include "hssta/core/ssta.hpp"
#include "hssta/hier/design.hpp"
#include "hssta/hier/design_grid.hpp"

namespace hssta::hier {

enum class CorrelationMode {
  kReplacement,  ///< the paper's proposed method
  kGlobalOnly,   ///< baseline: only global variation shared across modules
};

struct HierOptions {
  CorrelationMode mode = CorrelationMode::kReplacement;
  /// Extension (the paper's future work): charge each top-level connection
  /// with drive_res(out) * input_cap(in) plus its load-sigma random part.
  bool load_aware_boundary = false;
  /// Fixed extra interconnect delay per top-level connection, ns.
  double interconnect_delay = 0.0;
  /// PCA truncation for the design space (ablations).
  linalg::PcaOptions pca;
  /// Corner-like what-if scaling of process variation: entry p multiplies
  /// parameter p's correlated coefficients (global variable + spatial
  /// block) on every instance-derived edge after the module->design remap.
  /// Empty (or all-1) means no scaling — the ordinary analysis. Connection
  /// edges (whose correlated coefficients are zero) and the edge-private
  /// random parts (not attributable to one parameter) are unscaled.
  std::vector<double> param_sigma_scale;
};

struct HierResult {
  timing::TimingGraph design_graph;
  core::SstaResult ssta;
  /// Design space (null in global-only mode, which has no joint PCA).
  std::shared_ptr<const variation::VariationSpace> design_space;
  DesignGrid grid;
  double build_seconds = 0.0;
  double analysis_seconds = 0.0;

  /// The design delay distribution.
  [[nodiscard]] const timing::CanonicalForm& delay() const {
    return ssta.delay;
  }
};

/// Run the full design-level analysis.
[[nodiscard]] HierResult analyze_hierarchical(const HierDesign& design,
                                              const HierOptions& opts = {});

}  // namespace hssta::hier
