#include "hssta/hier/replace.hpp"

#include "hssta/util/error.hpp"

namespace hssta::hier {

using linalg::Matrix;
using timing::CanonicalForm;
using variation::VariationSpace;

Matrix replacement_matrix(const VariationSpace& module_space,
                          const VariationSpace& design_space,
                          std::span<const size_t> design_grid_indices) {
  HSSTA_REQUIRE(design_grid_indices.size() == module_space.num_grids(),
                "need one design grid per module grid");
  // B_n: the design loading rows of the module's grids.
  const Matrix bn =
      design_space.pca().loadings.gather_rows(design_grid_indices);
  // R = whitening_module * B_n = Λ^{-1/2} U^T B_n.
  return module_space.pca().whitening * bn;
}

CanonicalForm remap_canonical(const CanonicalForm& form,
                              const VariationSpace& module_space,
                              const VariationSpace& design_space,
                              const Matrix& r) {
  HSSTA_REQUIRE(form.dim() == module_space.dim(),
                "form does not live in the module space");
  HSSTA_REQUIRE(module_space.num_params() == design_space.num_params(),
                "parameter sets differ between spaces");
  HSSTA_REQUIRE(r.rows() == module_space.num_components() &&
                    r.cols() == design_space.num_components(),
                "replacement matrix has wrong shape");

  const size_t num_params = module_space.num_params();
  CanonicalForm out(design_space.dim());
  out.set_nominal(form.nominal());
  out.set_random(form.random());

  const std::span<const double> src = form.corr();
  const std::span<double> dst = out.corr();
  for (size_t p = 0; p < num_params; ++p) {
    // Global variables are shared verbatim across the hierarchy.
    dst[design_space.global_index(p)] = src[module_space.global_index(p)];
    // Spatial block: a_design = R^T * a_module.
    const std::span<const double> a =
        src.subspan(module_space.spatial_offset(p),
                    module_space.num_components());
    const std::span<double> b = dst.subspan(
        design_space.spatial_offset(p), design_space.num_components());
    for (size_t i = 0; i < r.rows(); ++i) {
      const double ai = a[i];
      if (ai == 0.0) continue;
      const std::span<const double> row = r.row(i);
      for (size_t j = 0; j < row.size(); ++j) b[j] += ai * row[j];
    }
  }
  return out;
}

}  // namespace hssta::hier
