/// \file replace.hpp
/// Independent-variable replacement (paper Section V, eq. 19): expresses a
/// module's spatial PCA variables x through the design-level variables xt,
///   x = A^{-1} * B_n * xt = Λ_m^{-1/2} U_m^T * B_n * xt =: R * xt
/// with A = U_m Λ_m^{1/2} the module loading transform and B_n the rows of
/// the design loading transform belonging to the module's grids.
///
/// Because the design correlation sub-matrix over the module's grids equals
/// the module correlation matrix (same pitch, translated centers, distance-
/// only profile), R * R^T = Λ^{-1/2} U^T C U Λ^{-1/2} = I: the replacement
/// preserves every module-internal covariance exactly while adding the
/// correct cross-module covariance (both asserted in tests).

#pragma once

#include <span>

#include "hssta/linalg/matrix.hpp"
#include "hssta/timing/canonical.hpp"
#include "hssta/variation/space.hpp"

namespace hssta::hier {

/// R (k_module x k_design) for one instance whose module grids map to
/// `design_grid_indices` (module grid order).
[[nodiscard]] linalg::Matrix replacement_matrix(
    const variation::VariationSpace& module_space,
    const variation::VariationSpace& design_space,
    std::span<const size_t> design_grid_indices);

/// Remap a canonical form from the module space into the design space:
/// per-parameter spatial blocks transform through R^T, global coefficients
/// and the private random part carry over unchanged. The parameter sets
/// must match (checked).
[[nodiscard]] timing::CanonicalForm remap_canonical(
    const timing::CanonicalForm& form,
    const variation::VariationSpace& module_space,
    const variation::VariationSpace& design_space, const linalg::Matrix& r);

}  // namespace hssta::hier
