#include "hssta/hier/design.hpp"

#include <unordered_set>

#include "hssta/util/error.hpp"

namespace hssta::hier {

size_t HierDesign::add_instance(ModuleInstance instance) {
  HSSTA_REQUIRE(instance.model != nullptr, "instance needs a timing model");
  HSSTA_REQUIRE(!instance.name.empty(), "instance needs a name");
  instances_.push_back(std::move(instance));
  return instances_.size() - 1;
}

void HierDesign::validate() const {
  HSSTA_REQUIRE(!instances_.empty(), "design has no instances");
  HSSTA_REQUIRE(!inputs_.empty(), "design has no primary inputs");
  HSSTA_REQUIRE(!outputs_.empty(), "design has no primary outputs");

  for (const ModuleInstance& inst : instances_) {
    const placement::Die& mdie = inst.model->die();
    HSSTA_REQUIRE(inst.origin.x >= -1e-9 && inst.origin.y >= -1e-9 &&
                      inst.origin.x + mdie.width <= die_.width + 1e-9 &&
                      inst.origin.y + mdie.height <= die_.height + 1e-9,
                  "instance outside the design die: " + inst.name);
    if (inst.netlist) {
      HSSTA_REQUIRE(inst.module_placement != nullptr,
                    "netlist-backed instance needs its module placement: " +
                        inst.name);
      HSSTA_REQUIRE(
          inst.netlist->primary_inputs().size() ==
                  inst.model->graph().inputs().size() &&
              inst.netlist->primary_outputs().size() ==
                  inst.model->graph().outputs().size(),
          "instance netlist ports do not match its model: " + inst.name);
    }
  }

  auto check_output_ref = [&](const PortRef& r, const char* what) {
    HSSTA_REQUIRE(r.instance < instances_.size(),
                  std::string(what) + ": instance index out of range");
    HSSTA_REQUIRE(
        r.port < instances_[r.instance].model->graph().outputs().size(),
        std::string(what) + ": output port index out of range");
  };
  auto check_input_ref = [&](const PortRef& r, const char* what) {
    HSSTA_REQUIRE(r.instance < instances_.size(),
                  std::string(what) + ": instance index out of range");
    HSSTA_REQUIRE(
        r.port < instances_[r.instance].model->graph().inputs().size(),
        std::string(what) + ": input port index out of range");
  };

  // Every instance input has at most one driver (connection or design PI).
  // det-ok: duplicate-driver membership test only, never iterated.
  std::unordered_set<uint64_t> driven;
  auto key = [](const PortRef& r) {
    return (static_cast<uint64_t>(r.instance) << 32) | r.port;
  };
  auto claim_input = [&](const PortRef& r, const char* what) {
    check_input_ref(r, what);
    HSSTA_REQUIRE(driven.insert(key(r)).second,
                  std::string(what) + ": instance input driven twice");
  };

  for (const Connection& c : connections_) {
    check_output_ref(c.from_output, "connection");
    claim_input(c.to_input, "connection");
  }
  for (const PrimaryInput& pi : inputs_) {
    HSSTA_REQUIRE(!pi.sinks.empty(),
                  "primary input without sinks: " + pi.name);
    for (const PortRef& r : pi.sinks) claim_input(r, "primary input");
  }
  for (const PrimaryOutput& po : outputs_)
    check_output_ref(po.source, "primary output");
}

}  // namespace hssta::hier
