/// \file design.hpp
/// Hierarchical design description (paper Section V): pre-characterized
/// timing models placed at origins on the top-level die, stitched by
/// port-to-port connections. Instances may optionally carry their source
/// netlist and module-local placement so the flat Monte Carlo reference can
/// rebuild the fully flattened circuit.

#pragma once

#include <string>
#include <vector>

#include "hssta/model/timing_model.hpp"
#include "hssta/netlist/netlist.hpp"
#include "hssta/placement/placement.hpp"

namespace hssta::hier {

/// One placed module instance. The model (and optional netlist/placement)
/// are referenced, not owned; the caller keeps them alive.
struct ModuleInstance {
  std::string name;
  const model::TimingModel* model = nullptr;
  placement::Point origin;  ///< module (0,0) lands here on the design die
  /// Optional flattening data for the Monte Carlo reference.
  const netlist::Netlist* netlist = nullptr;
  const placement::Placement* module_placement = nullptr;
};

/// Reference to one port of one instance (index into the model's
/// input_names()/output_names() order).
struct PortRef {
  size_t instance = 0;
  size_t port = 0;

  bool operator==(const PortRef&) const = default;
};

/// Top-level net from an instance output to an instance input.
struct Connection {
  PortRef from_output;
  PortRef to_input;
};

/// Design primary input fanning out to instance inputs.
struct PrimaryInput {
  std::string name;
  std::vector<PortRef> sinks;
};

/// Design primary output fed by one instance output.
struct PrimaryOutput {
  std::string name;
  PortRef source;
};

class HierDesign {
 public:
  explicit HierDesign(std::string name, placement::Die die)
      : name_(std::move(name)), die_(die) {}

  /// Add an instance; returns its index.
  size_t add_instance(ModuleInstance instance);
  void add_connection(Connection c) { connections_.push_back(c); }
  void add_primary_input(PrimaryInput pi) { inputs_.push_back(std::move(pi)); }
  void add_primary_output(PrimaryOutput po) {
    outputs_.push_back(std::move(po));
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const placement::Die& die() const { return die_; }
  [[nodiscard]] const std::vector<ModuleInstance>& instances() const {
    return instances_;
  }
  [[nodiscard]] const std::vector<Connection>& connections() const {
    return connections_;
  }
  [[nodiscard]] const std::vector<PrimaryInput>& primary_inputs() const {
    return inputs_;
  }
  [[nodiscard]] const std::vector<PrimaryOutput>& primary_outputs() const {
    return outputs_;
  }

  /// Structural checks: port references in range, instances on the die,
  /// every instance input driven at most once, ports exist, at least one
  /// primary input and output. Throws hssta::Error on violation.
  void validate() const;

 private:
  std::string name_;
  placement::Die die_;
  std::vector<ModuleInstance> instances_;
  std::vector<Connection> connections_;
  std::vector<PrimaryInput> inputs_;
  std::vector<PrimaryOutput> outputs_;
};

}  // namespace hssta::hier
