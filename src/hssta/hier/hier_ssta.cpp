#include "hssta/hier/hier_ssta.hpp"

#include <cmath>

#include "hssta/hier/replace.hpp"
#include "hssta/util/error.hpp"
#include "hssta/util/timer.hpp"

namespace hssta::hier {

using timing::CanonicalForm;
using timing::EdgeId;
using timing::TimingGraph;
using timing::VertexId;

namespace {

/// Per-instance coefficient remapper for the two correlation modes.
class Remapper {
 public:
  /// Replacement mode: module space -> design space through R.
  Remapper(const variation::VariationSpace& module_space,
           const variation::VariationSpace& design_space,
           std::span<const size_t> design_grids)
      : module_space_(&module_space),
        design_space_(&design_space),
        r_(replacement_matrix(module_space, design_space, design_grids)) {}

  /// Global-only mode: copy the spatial block to a private slot range.
  Remapper(const variation::VariationSpace& module_space, size_t total_dim,
           size_t num_params, size_t spatial_slot)
      : module_space_(&module_space),
        total_dim_(total_dim),
        num_params_(num_params),
        spatial_slot_(spatial_slot) {}

  [[nodiscard]] CanonicalForm operator()(const CanonicalForm& form) const {
    if (design_space_)
      return remap_canonical(form, *module_space_, *design_space_, r_);
    // Global-only: globals to the shared head, spatial blocks to this
    // instance's private range.
    CanonicalForm out(total_dim_);
    out.set_nominal(form.nominal());
    out.set_random(form.random());
    const size_t k = module_space_->num_components();
    for (size_t p = 0; p < num_params_; ++p) {
      out.corr()[p] = form.corr()[module_space_->global_index(p)];
      for (size_t j = 0; j < k; ++j)
        out.corr()[spatial_slot_ + p * k + j] =
            form.corr()[module_space_->spatial_offset(p) + j];
    }
    return out;
  }

 private:
  const variation::VariationSpace* module_space_;
  const variation::VariationSpace* design_space_ = nullptr;
  linalg::Matrix r_;
  size_t total_dim_ = 0;
  size_t num_params_ = 0;
  size_t spatial_slot_ = 0;
};

}  // namespace

HierResult analyze_hierarchical(const HierDesign& design,
                                const HierOptions& opts) {
  design.validate();
  WallTimer build_timer;

  DesignGrid grid = build_design_grid(design);
  const auto& instances = design.instances();
  const size_t num_params =
      instances.front().model->variation().space->num_params();

  // Design coefficient space.
  std::shared_ptr<const variation::VariationSpace> design_space;
  size_t total_dim = 0;
  std::vector<size_t> private_slot(instances.size(), 0);
  if (opts.mode == CorrelationMode::kReplacement) {
    design_space = build_design_space(design, grid, opts.pca);
    total_dim = design_space->dim();
  } else {
    // Shared globals followed by per-instance private spatial blocks.
    total_dim = num_params;
    for (size_t t = 0; t < instances.size(); ++t) {
      private_slot[t] = total_dim;
      total_dim += num_params *
                   instances[t].model->variation().space->num_components();
    }
  }

  TimingGraph g = design_space
                      ? TimingGraph(design_space)
                      : TimingGraph(total_dim);

  // Instance subgraphs with remapped coefficients.
  std::vector<std::vector<VertexId>> inst_vertex(instances.size());
  for (size_t t = 0; t < instances.size(); ++t) {
    const ModuleInstance& inst = instances[t];
    const TimingGraph& mg = inst.model->graph();
    const variation::VariationSpace& mspace = *inst.model->variation().space;
    const Remapper remap =
        opts.mode == CorrelationMode::kReplacement
            ? Remapper(mspace, *design_space, grid.instance_grids[t])
            : Remapper(mspace, total_dim, num_params, private_slot[t]);

    std::vector<VertexId>& vmap = inst_vertex[t];
    vmap.assign(mg.num_vertex_slots(), timing::kNoVertex);
    for (VertexId v = 0; v < mg.num_vertex_slots(); ++v) {
      if (!mg.vertex_alive(v)) continue;
      vmap[v] = g.add_vertex(inst.name + "/" + mg.vertex(v).name);
    }
    for (EdgeId e = 0; e < mg.num_edge_slots(); ++e) {
      if (!mg.edge_alive(e)) continue;
      const timing::TimingEdge& te = mg.edge(e);
      g.add_edge(vmap[te.from], vmap[te.to], remap(te.delay));
    }
  }

  auto input_vertex = [&](const PortRef& r) {
    const TimingGraph& mg = instances[r.instance].model->graph();
    return inst_vertex[r.instance][mg.inputs()[r.port]];
  };
  auto output_vertex = [&](const PortRef& r) {
    const TimingGraph& mg = instances[r.instance].model->graph();
    return inst_vertex[r.instance][mg.outputs()[r.port]];
  };

  // Top-level connections.
  for (const Connection& c : design.connections()) {
    CanonicalForm d = CanonicalForm::constant(opts.interconnect_delay,
                                              total_dim);
    if (opts.load_aware_boundary) {
      const ModuleInstance& src = instances[c.from_output.instance];
      const ModuleInstance& dst = instances[c.to_input.instance];
      const double drive = src.model->boundary()
                               .output_drive_res[c.from_output.port];
      const double cap = dst.model->boundary().input_cap[c.to_input.port];
      const double extra = drive * cap;
      d.add_nominal(extra);
      const double load_sigma = src.model->variation()
                                    .space->parameters()
                                    .load_sigma_rel;
      d.set_random(extra * load_sigma);
    }
    g.add_edge(output_vertex(c.from_output), input_vertex(c.to_input),
               std::move(d));
  }

  // Design ports: dedicated port vertices wired with zero-delay edges.
  for (const PrimaryInput& pi : design.primary_inputs()) {
    const VertexId v = g.add_vertex(pi.name, /*is_input=*/true);
    for (const PortRef& r : pi.sinks)
      g.add_edge(v, input_vertex(r), CanonicalForm(total_dim));
  }
  for (const PrimaryOutput& po : design.primary_outputs()) {
    const VertexId v = g.add_vertex(po.name, false, /*is_output=*/true);
    g.add_edge(output_vertex(po.source), v, CanonicalForm(total_dim));
  }
  const double build_seconds = build_timer.seconds();

  WallTimer analysis_timer;
  core::SstaResult ssta = core::run_ssta(g);
  const double analysis_seconds = analysis_timer.seconds();

  return HierResult{std::move(g), std::move(ssta), std::move(design_space),
                    std::move(grid), build_seconds, analysis_seconds};
}

}  // namespace hssta::hier
