#include "hssta/hier/hier_ssta.hpp"

#include "hssta/hier/stitch.hpp"
#include "hssta/util/timer.hpp"

namespace hssta::hier {

HierResult analyze_hierarchical(const HierDesign& design,
                                const HierOptions& opts) {
  WallTimer build_timer;
  StitchedDesign stitched = stitch_design(design, opts);
  const double build_seconds = build_timer.seconds();

  WallTimer analysis_timer;
  core::SstaResult ssta = core::run_ssta(stitched.graph);
  const double analysis_seconds = analysis_timer.seconds();

  return HierResult{std::move(stitched.graph), std::move(ssta),
                    std::move(stitched.design_space),
                    std::move(stitched.grid), build_seconds,
                    analysis_seconds};
}

}  // namespace hssta::hier
