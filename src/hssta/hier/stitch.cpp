#include "hssta/hier/stitch.hpp"

#include <utility>

#include "hssta/util/error.hpp"

namespace hssta::hier {

using timing::CanonicalForm;
using timing::EdgeId;
using timing::TimingGraph;
using timing::VertexId;

InstanceRemapper InstanceRemapper::replacement(
    const variation::VariationSpace& module_space,
    const variation::VariationSpace& design_space,
    std::span<const size_t> design_grids) {
  return replacement_with(
      module_space, design_space,
      replacement_matrix(module_space, design_space, design_grids));
}

InstanceRemapper InstanceRemapper::replacement_with(
    const variation::VariationSpace& module_space,
    const variation::VariationSpace& design_space, linalg::Matrix r) {
  InstanceRemapper out;
  out.module_space_ = &module_space;
  out.design_space_ = &design_space;
  out.r_ = std::move(r);
  return out;
}

InstanceRemapper InstanceRemapper::global_only(
    const variation::VariationSpace& module_space, size_t total_dim,
    size_t num_params, size_t spatial_slot) {
  InstanceRemapper out;
  out.module_space_ = &module_space;
  out.total_dim_ = total_dim;
  out.num_params_ = num_params;
  out.spatial_slot_ = spatial_slot;
  return out;
}

CanonicalForm InstanceRemapper::operator()(const CanonicalForm& form) const {
  if (design_space_)
    return remap_canonical(form, *module_space_, *design_space_, r_);
  // Global-only: globals to the shared head, spatial blocks to this
  // instance's private range.
  CanonicalForm out(total_dim_);
  out.set_nominal(form.nominal());
  out.set_random(form.random());
  const size_t k = module_space_->num_components();
  for (size_t p = 0; p < num_params_; ++p) {
    out.corr()[p] = form.corr()[module_space_->global_index(p)];
    for (size_t j = 0; j < k; ++j)
      out.corr()[spatial_slot_ + p * k + j] =
          form.corr()[module_space_->spatial_offset(p) + j];
  }
  return out;
}

CanonicalForm connection_delay(const HierDesign& design,
                               const HierOptions& opts, const Connection& c,
                               size_t total_dim) {
  CanonicalForm d = CanonicalForm::constant(opts.interconnect_delay,
                                            total_dim);
  if (opts.load_aware_boundary) {
    const auto& instances = design.instances();
    const ModuleInstance& src = instances[c.from_output.instance];
    const ModuleInstance& dst = instances[c.to_input.instance];
    const double drive =
        src.model->boundary().output_drive_res[c.from_output.port];
    const double cap = dst.model->boundary().input_cap[c.to_input.port];
    const double extra = drive * cap;
    d.add_nominal(extra);
    const double load_sigma =
        src.model->variation().space->parameters().load_sigma_rel;
    d.set_random(extra * load_sigma);
  }
  return d;
}

std::vector<double> sigma_multipliers(
    const HierOptions& opts, size_t total_dim, size_t num_params,
    const variation::VariationSpace* design_space,
    std::span<const size_t> private_slots,
    std::span<const size_t> private_components) {
  const auto& scale = opts.param_sigma_scale;
  HSSTA_REQUIRE(scale.empty() || scale.size() == num_params,
                "param_sigma_scale needs one entry per parameter");
  bool trivial = true;
  for (double s : scale) trivial = trivial && s == 1.0;
  if (trivial) return {};

  std::vector<double> mult(total_dim, 1.0);
  if (design_space != nullptr) {
    for (size_t p = 0; p < num_params; ++p) {
      mult[design_space->global_index(p)] = scale[p];
      const size_t k = design_space->num_components();
      for (size_t j = 0; j < k; ++j)
        mult[design_space->spatial_offset(p) + j] = scale[p];
    }
  } else {
    // Global-only layout: shared globals, then per-instance private blocks
    // of num_params * components[t] slots each.
    for (size_t p = 0; p < num_params; ++p) mult[p] = scale[p];
    for (size_t t = 0; t < private_slots.size(); ++t) {
      const size_t k = private_components[t];
      for (size_t p = 0; p < num_params; ++p)
        for (size_t j = 0; j < k; ++j)
          mult[private_slots[t] + p * k + j] = scale[p];
    }
  }
  return mult;
}

void apply_sigma_scale(std::span<const double> multipliers,
                       CanonicalForm& form) {
  if (multipliers.empty()) return;
  HSSTA_REQUIRE(multipliers.size() == form.dim(),
                "sigma multipliers do not match the form dimension");
  const std::span<double> corr = form.corr();
  for (size_t i = 0; i < corr.size(); ++i) corr[i] *= multipliers[i];
}

void stitch_instance_subgraph(TimingGraph& g, const ModuleInstance& inst,
                              const InstanceRemapper& remap,
                              std::span<const double> sigma_mult,
                              InstanceStitch& out) {
  const TimingGraph& mg = inst.model->graph();
  out.vertex_map.assign(mg.num_vertex_slots(), timing::kNoVertex);
  for (VertexId v = 0; v < mg.num_vertex_slots(); ++v) {
    if (!mg.vertex_alive(v)) continue;
    out.vertex_map[v] = g.add_vertex(inst.name + "/" + mg.vertex(v).name);
  }
  out.edge_map.assign(mg.num_edge_slots(), timing::kNoEdge);
  for (EdgeId e = 0; e < mg.num_edge_slots(); ++e) {
    if (!mg.edge_alive(e)) continue;
    const timing::TimingEdge& te = mg.edge(e);
    CanonicalForm d = remap(te.delay);
    apply_sigma_scale(sigma_mult, d);
    out.edge_map[e] = g.add_edge(out.vertex_map[te.from],
                                 out.vertex_map[te.to], std::move(d));
  }
}

VertexId StitchedDesign::input_vertex(const HierDesign& design,
                                      const PortRef& r) const {
  const TimingGraph& mg = design.instances()[r.instance].model->graph();
  return instances[r.instance].vertex_map[mg.inputs()[r.port]];
}

VertexId StitchedDesign::output_vertex(const HierDesign& design,
                                       const PortRef& r) const {
  const TimingGraph& mg = design.instances()[r.instance].model->graph();
  return instances[r.instance].vertex_map[mg.outputs()[r.port]];
}

StitchedDesign stitch_design(const HierDesign& design,
                             const HierOptions& opts) {
  design.validate();

  StitchedDesign out;
  out.grid = build_design_grid(design);
  const auto& instances = design.instances();
  const size_t num_params =
      instances.front().model->variation().space->num_params();

  // Design coefficient space.
  std::vector<size_t> private_slot(instances.size(), 0);
  std::vector<size_t> private_components(instances.size(), 0);
  if (opts.mode == CorrelationMode::kReplacement) {
    out.design_space = build_design_space(design, out.grid, opts.pca);
    out.total_dim = out.design_space->dim();
  } else {
    // Shared globals followed by per-instance private spatial blocks.
    out.total_dim = num_params;
    for (size_t t = 0; t < instances.size(); ++t) {
      private_slot[t] = out.total_dim;
      private_components[t] =
          instances[t].model->variation().space->num_components();
      out.total_dim += num_params * private_components[t];
    }
  }
  const std::vector<double> mult = sigma_multipliers(
      opts, out.total_dim, num_params, out.design_space.get(), private_slot,
      private_components);

  TimingGraph g = out.design_space ? TimingGraph(out.design_space)
                                   : TimingGraph(out.total_dim);

  // Instance subgraphs with remapped coefficients.
  out.instances.resize(instances.size());
  for (size_t t = 0; t < instances.size(); ++t) {
    const ModuleInstance& inst = instances[t];
    const variation::VariationSpace& mspace = *inst.model->variation().space;
    const InstanceRemapper remap =
        opts.mode == CorrelationMode::kReplacement
            ? InstanceRemapper::replacement(mspace, *out.design_space,
                                            out.grid.instance_grids[t])
            : InstanceRemapper::global_only(mspace, out.total_dim, num_params,
                                            private_slot[t]);

    InstanceStitch& st = out.instances[t];
    st.r = remap.r();
    st.private_slot = private_slot[t];
    stitch_instance_subgraph(g, inst, remap, mult, st);
  }

  // Top-level connections.
  for (const Connection& c : design.connections())
    out.connection_edges.push_back(
        g.add_edge(out.output_vertex(design, c.from_output),
                   out.input_vertex(design, c.to_input),
                   connection_delay(design, opts, c, out.total_dim)));

  // Design ports: dedicated port vertices wired with zero-delay edges.
  for (const PrimaryInput& pi : design.primary_inputs()) {
    const VertexId v = g.add_vertex(pi.name, /*is_input=*/true);
    out.pi_vertices.push_back(v);
    std::vector<EdgeId> edges;
    for (const PortRef& r : pi.sinks)
      edges.push_back(g.add_edge(v, out.input_vertex(design, r),
                                 CanonicalForm(out.total_dim)));
    out.pi_edges.push_back(std::move(edges));
  }
  for (const PrimaryOutput& po : design.primary_outputs()) {
    const VertexId v = g.add_vertex(po.name, false, /*is_output=*/true);
    out.po_vertices.push_back(v);
    out.po_edges.push_back(g.add_edge(out.output_vertex(design, po.source), v,
                                      CanonicalForm(out.total_dim)));
  }

  out.graph = std::move(g);
  return out;
}

}  // namespace hssta::hier
