/// \file stitch.hpp
/// The design-level stitching core shared by the one-shot analysis
/// (analyze_hierarchical) and the incremental engine (incr::DesignState).
///
/// Stitching turns a validated HierDesign into one design-level timing
/// graph: every instance's model subgraph is copied in with its edge delays
/// remapped into the design coefficient space (paper eq. 19 in replacement
/// mode; private spatial slots in the global-only baseline), top-level
/// connections become boundary edges, and design ports become dedicated
/// port vertices. StitchedDesign additionally records full provenance —
/// which design vertices/edges came from which module vertex/edge of which
/// instance, and which replacement matrix R produced the coefficients — so
/// the incremental engine can later restitch exactly one instance, rewire
/// one connection, or refresh coefficients in place, reproducing the
/// arithmetic of a from-scratch stitch bit for bit.

#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "hssta/hier/design.hpp"
#include "hssta/hier/design_grid.hpp"
#include "hssta/hier/hier_ssta.hpp"
#include "hssta/hier/replace.hpp"
#include "hssta/linalg/matrix.hpp"
#include "hssta/timing/graph.hpp"

namespace hssta::hier {

/// Per-instance coefficient remapper for the two correlation modes. In
/// replacement mode every module-space form transforms through R into the
/// design space; in global-only mode the globals move to the shared head
/// and the spatial block to the instance's private slot range.
class InstanceRemapper {
 public:
  /// Replacement mode, computing R from the spaces.
  [[nodiscard]] static InstanceRemapper replacement(
      const variation::VariationSpace& module_space,
      const variation::VariationSpace& design_space,
      std::span<const size_t> design_grids);

  /// Replacement mode with a precomputed R (the incremental engine caches
  /// R per instance and reuses it when only coefficients refresh).
  [[nodiscard]] static InstanceRemapper replacement_with(
      const variation::VariationSpace& module_space,
      const variation::VariationSpace& design_space, linalg::Matrix r);

  /// Global-only baseline: copy the spatial block to a private slot range.
  [[nodiscard]] static InstanceRemapper global_only(
      const variation::VariationSpace& module_space, size_t total_dim,
      size_t num_params, size_t spatial_slot);

  [[nodiscard]] timing::CanonicalForm operator()(
      const timing::CanonicalForm& form) const;

  /// The replacement matrix (replacement mode only).
  [[nodiscard]] const linalg::Matrix& r() const { return r_; }

 private:
  InstanceRemapper() = default;

  const variation::VariationSpace* module_space_ = nullptr;
  const variation::VariationSpace* design_space_ = nullptr;
  linalg::Matrix r_;
  size_t total_dim_ = 0;
  size_t num_params_ = 0;
  size_t spatial_slot_ = 0;
};

/// Delay of one top-level connection: the fixed interconnect delay plus,
/// with load_aware_boundary, drive_res(out) * input_cap(in) and its
/// load-sigma random part. Identical arithmetic in both analysis paths.
[[nodiscard]] timing::CanonicalForm connection_delay(const HierDesign& design,
                                                     const HierOptions& opts,
                                                     const Connection& c,
                                                     size_t total_dim);

/// Per-slot multipliers realizing HierOptions::param_sigma_scale over the
/// design coefficient layout: slot i of parameter p's global variable and
/// spatial block(s) gets scale[p], everything else 1. Empty when every
/// scale is 1 (the common case — callers skip the scaling pass entirely,
/// keeping the default path bit-identical to the pre-scaling code).
/// `private_slots`/`private_components` describe the global-only layout
/// (empty in replacement mode, where `design_space` fixes the layout).
[[nodiscard]] std::vector<double> sigma_multipliers(
    const HierOptions& opts, size_t total_dim, size_t num_params,
    const variation::VariationSpace* design_space,
    std::span<const size_t> private_slots,
    std::span<const size_t> private_components);

/// Scale a form's correlated coefficients by per-slot multipliers (no-op
/// for an empty multiplier vector).
void apply_sigma_scale(std::span<const double> multipliers,
                       timing::CanonicalForm& form);

/// Provenance of one stitched instance.
struct InstanceStitch;

/// Stitch one instance's model subgraph into `g`: vertices then edges, in
/// model slot order, each edge delay remapped and sigma-scaled. Fills
/// `out.vertex_map`/`out.edge_map`; the caller records R / private_slot.
/// Exactly the loop stitch_design runs per instance, shared so the
/// incremental engine's single-instance restitch reproduces its vertex
/// naming, edge ordering and arithmetic bit for bit.
void stitch_instance_subgraph(timing::TimingGraph& g,
                              const ModuleInstance& inst,
                              const InstanceRemapper& remap,
                              std::span<const double> sigma_mult,
                              InstanceStitch& out);

/// Provenance of one stitched instance.
struct InstanceStitch {
  /// Module vertex slot -> design vertex (kNoVertex for dead slots).
  std::vector<timing::VertexId> vertex_map;
  /// Module edge slot -> design edge (kNoEdge for dead slots).
  std::vector<timing::EdgeId> edge_map;
  /// Replacement matrix R of this instance (replacement mode; empty
  /// otherwise).
  linalg::Matrix r;
  /// First private spatial slot (global-only mode; 0 otherwise).
  size_t private_slot = 0;
};

/// A stitched design graph plus everything needed to edit it in place.
struct StitchedDesign {
  timing::TimingGraph graph{size_t{0}};  ///< replaced by stitch_design
  /// Null in global-only mode (which has no joint design PCA).
  std::shared_ptr<const variation::VariationSpace> design_space;
  DesignGrid grid;
  size_t total_dim = 0;
  std::vector<InstanceStitch> instances;
  /// Per top-level connection: its boundary edge.
  std::vector<timing::EdgeId> connection_edges;
  /// Per primary input: its port vertex and one edge per sink.
  std::vector<timing::VertexId> pi_vertices;
  std::vector<std::vector<timing::EdgeId>> pi_edges;
  /// Per primary output: its port vertex and feeding edge.
  std::vector<timing::VertexId> po_vertices;
  std::vector<timing::EdgeId> po_edges;

  /// The stitched vertex of an instance input/output port reference.
  [[nodiscard]] timing::VertexId input_vertex(const HierDesign& design,
                                              const PortRef& r) const;
  [[nodiscard]] timing::VertexId output_vertex(const HierDesign& design,
                                               const PortRef& r) const;
};

/// Build the stitched design graph with provenance. Validates the design,
/// builds the heterogeneous grid and (in replacement mode) the design
/// space, then stitches instances, connections and ports in a fixed order
/// — the vertex/edge numbering every from-scratch analysis shares.
[[nodiscard]] StitchedDesign stitch_design(const HierDesign& design,
                                           const HierOptions& opts = {});

}  // namespace hssta::hier
