#include "hssta/check/check.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "hssta/exec/executor.hpp"
#include "hssta/library/cell.hpp"
#include "hssta/util/error.hpp"
#include "hssta/util/json.hpp"

namespace hssta::check {

namespace {

using netlist::GateId;
using netlist::kNoGate;
using netlist::NetId;

/// --- severity names --------------------------------------------------------

constexpr const char* kSeverityNames[] = {"off", "info", "warning", "error"};

/// --- rule catalog ----------------------------------------------------------
/// Append-only; a shipped id never changes meaning. Keep docs/CHECKS.md in
/// sync (check_test pins the catalog against the doc).

constexpr RuleInfo kCatalog[] = {
    // structural (netlist)
    {"HSC001", Severity::kError, "structural",
     "combinational cycle (the cycle path is printed)",
     "break the feedback loop; combinational netlists must be acyclic"},
    {"HSC002", Severity::kError, "structural",
     "net has no driver and is not a primary input",
     "drive the net with a gate or declare it INPUT"},
    {"HSC003", Severity::kWarning, "structural",
     "gate output drives nothing and is not a primary output",
     "remove the dead gate or mark its output net OUTPUT"},
    {"HSC004", Severity::kWarning, "structural",
     "gate has the same net on more than one input pin",
     "deduplicate the fanin list; repeated pins distort load and depth"},
    {"HSC005", Severity::kWarning, "structural",
     "gate is unreachable from every primary input",
     "connect the cone to a primary input or remove it"},
    {"HSC006", Severity::kWarning, "structural",
     "gate has fanout but reaches no primary output",
     "mark a primary output in the cone or remove it"},
    {"HSC007", Severity::kWarning, "structural",
     "port anomaly: net marked both input and output, or duplicate "
     "net/gate names",
     "rename the duplicates; insert a buffer for input-to-output feedthrough"},
    {"HSC008", Severity::kError, "structural",
     "netlist has no primary inputs or no primary outputs",
     "declare at least one INPUT and one OUTPUT"},
    {"HSC009", Severity::kError, "structural",
     "gate fanin count does not match its cell type arity",
     "fix the gate's pin list or use a cell of matching arity"},
    {"HSC010", Severity::kInfo, "structural",
     "primary input drives nothing",
     "remove the unused input or connect it"},
    // numeric (graph / model / variation space)
    {"HSC020", Severity::kError, "numeric",
     "non-finite delay: NaN or Inf in a nominal, coefficient or random part",
     "re-extract the model; non-finite forms poison every downstream max"},
    {"HSC021", Severity::kWarning, "numeric",
     "negative nominal delay",
     "check the cell characterization; negative delays break path ordering"},
    {"HSC022", Severity::kWarning, "numeric",
     "negative random (independent) sigma on a delay",
     "sigmas are magnitudes; re-derive the random part as a non-negative rss"},
    {"HSC023", Severity::kError, "numeric",
     "degenerate variation space: no parameters, zero retained PCA "
     "components, non-finite eigenvalue, or space/graph dimension mismatch",
     "revisit the pca/parameter configuration; the canonical forms have no "
     "usable coordinate system"},
    {"HSC024", Severity::kWarning, "numeric",
     "bad process-parameter configuration: non-positive or non-finite "
     "sigma, or variance fractions that do not sum to 1",
     "fix the parameter table; fractions must be non-negative and sum to 1"},
    // hierarchy (stitched design)
    {"HSC040", Severity::kError, "hierarchy",
     "connection or port endpoint does not exist (instance or port index "
     "out of range, or instance without a model)",
     "fix the endpoint indices against the model's port lists"},
    {"HSC041", Severity::kError, "hierarchy",
     "instance input driven more than once",
     "every instance input must have exactly one driver; drop the extras"},
    {"HSC042", Severity::kWarning, "hierarchy",
     "floating instance input or primary input without sinks",
     "connect the port or expose it as a design primary input"},
    {"HSC043", Severity::kError, "hierarchy",
     "model/instance port arity or order mismatch at a stitch boundary",
     "re-extract the model from the instance's netlist; ports must match "
     "in count and order"},
    {"HSC044", Severity::kError, "hierarchy",
     "param_sigma_scale length does not match the parameter count",
     "provide one scale per process parameter (or an empty list)"},
    {"HSC045", Severity::kError, "hierarchy",
     "instance extends beyond the design die",
     "move the instance or enlarge the die"},
    {"HSC046", Severity::kError, "hierarchy",
     "instances disagree on variation configuration, or a model's PCA is "
     "inconsistent with its grid partition",
     "extract every model under one parameter set and grid policy"},
    {"HSC047", Severity::kError, "hierarchy",
     "empty design: no instances, no primary inputs or no primary outputs",
     "a design needs at least one instance, input and output"},
    // sequential (registers)
    {"HSC048", Severity::kError, "sequential",
     "register data or clock net is undriven",
     "drive the register's data input (and its clock, when one is named) "
     "with a gate or a primary input"},
    {"HSC049", Severity::kError, "sequential",
     "combinational cycle through a latch-free path",
     "break the loop with a register; only register-broken feedback is "
     "analyzable"},
    {"HSC050", Severity::kWarning, "sequential",
     "register output never reaches a primary output",
     "observe the register's state through some primary output, or remove "
     "the register"},
};

/// Routes raw findings through the severity-override table into a Report.
class Emitter {
 public:
  Emitter(const CheckOptions& options, Report& report)
      : options_(options), report_(report) {}

  void emit(std::string_view id, std::string object, std::string message) {
    const RuleInfo* info = find_rule(id);
    HSSTA_ASSERT(info != nullptr, "unknown check rule id emitted");
    Severity sev = info->default_severity;
    if (const auto it = options_.severity.find(id);
        it != options_.severity.end())
      sev = it->second;
    if (sev == Severity::kOff) return;
    report_.diagnostics.push_back(Diagnostic{std::string(id), sev,
                                             std::move(object),
                                             std::move(message),
                                             std::string(info->hint)});
  }

 private:
  const CheckOptions& options_;
  Report& report_;
};

std::string quoted(const std::string& s) { return "'" + s + "'"; }

/// --- structural netlist rules ---------------------------------------------

/// Kahn's algorithm over the gate-dependency graph; returns per-gate
/// resolved flags (false = on or downstream of a cycle). Mirrors
/// Netlist::topological_order but reports instead of throwing.
std::vector<uint8_t> kahn_resolved(const netlist::Netlist& nl) {
  const size_t ng = nl.num_gates();
  std::vector<uint32_t> pending(ng, 0);
  for (GateId g = 0; g < ng; ++g)
    for (const NetId f : nl.gate(g).fanins)
      if (nl.driver(f) != kNoGate) ++pending[g];
  const auto& sinks = nl.net_sinks();
  std::vector<GateId> queue;
  queue.reserve(ng);
  for (GateId g = 0; g < ng; ++g)
    if (pending[g] == 0) queue.push_back(g);
  std::vector<uint8_t> resolved(ng, 0);
  for (size_t head = 0; head < queue.size(); ++head) {
    const GateId g = queue[head];
    resolved[g] = 1;
    for (const GateId s : sinks[nl.gate(g).output])
      if (--pending[s] == 0) queue.push_back(s);
  }
  return resolved;
}

/// Extract one cycle from the unresolved region: walk fanin drivers that
/// are themselves unresolved until a gate repeats. Deterministic (lowest
/// unresolved gate id first, first unresolved fanin driver at each step).
std::vector<GateId> extract_cycle(const netlist::Netlist& nl,
                                  const std::vector<uint8_t>& resolved) {
  GateId start = kNoGate;
  for (GateId g = 0; g < nl.num_gates(); ++g)
    if (!resolved[g]) {
      start = g;
      break;
    }
  if (start == kNoGate) return {};
  std::vector<GateId> walk;
  std::vector<uint32_t> pos(nl.num_gates(),
                            std::numeric_limits<uint32_t>::max());
  GateId cur = start;
  while (pos[cur] == std::numeric_limits<uint32_t>::max()) {
    pos[cur] = static_cast<uint32_t>(walk.size());
    walk.push_back(cur);
    GateId next = kNoGate;
    for (const NetId f : nl.gate(cur).fanins) {
      const GateId drv = nl.driver(f);
      if (drv != kNoGate && !resolved[drv]) {
        next = drv;
        break;
      }
    }
    // Every unresolved gate keeps at least one unresolved fanin driver.
    HSSTA_ASSERT(next != kNoGate, "unresolved gate without unresolved fanin");
    cur = next;
  }
  return {walk.begin() + pos[cur], walk.end()};
}

void check_netlist(Emitter& e, const netlist::Netlist& nl) {
  const size_t nn = nl.num_nets();
  const size_t ng = nl.num_gates();
  const auto& sinks = nl.net_sinks();

  // Register pin usage per net: data captures and clock uses make a net
  // "consumed" for the dead-logic rules, and register outputs are driven
  // (by the flop) for the driver rules.
  std::vector<uint8_t> reg_data(nn, 0);
  std::vector<uint8_t> reg_clock(nn, 0);
  for (const netlist::Register& r : nl.registers()) {
    reg_data[r.data_in] = 1;
    if (r.clock != netlist::kNoNet) reg_clock[r.clock] = 1;
  }
  const auto net_driven = [&](NetId n) {
    return nl.is_primary_input(n) || nl.driver(n) != kNoGate ||
           nl.is_register_output(n);
  };

  // HSC008: missing ports.
  if (nl.primary_inputs().empty())
    e.emit("HSC008", nl.name(), "netlist has no primary inputs");
  if (nl.primary_outputs().empty())
    e.emit("HSC008", nl.name(), "netlist has no primary outputs");

  // HSC001/HSC049: combinational cycles, with one cycle path printed. A
  // register's data_in and data_out are distinct nets, so any cycle in the
  // gate graph of a sequential netlist is by construction latch-free —
  // that is the sequential rule's finding.
  const std::vector<uint8_t> resolved = kahn_resolved(nl);
  const size_t stuck = static_cast<size_t>(
      std::count(resolved.begin(), resolved.end(), uint8_t{0}));
  if (stuck > 0) {
    const std::vector<GateId> cycle = extract_cycle(nl, resolved);
    std::ostringstream path;
    for (const GateId g : cycle) path << nl.gate(g).name << " -> ";
    path << nl.gate(cycle.front()).name;
    const std::string tail = path.str() + " (" + std::to_string(stuck) +
                             " gate(s) on or downstream of cycles)";
    if (nl.is_sequential())
      e.emit("HSC049", nl.gate(cycle.front()).name,
             "combinational cycle through a latch-free path: " + tail);
    else
      e.emit("HSC001", nl.gate(cycle.front()).name,
             "combinational cycle: " + tail);
  }

  // HSC002: undriven nets. Register outputs are driven by their flop; a
  // net used *only* as a register clock is HSC048's finding (reported with
  // the register for context, not once per net).
  for (NetId n = 0; n < nn; ++n) {
    if (net_driven(n)) continue;
    if (reg_clock[n] && !reg_data[n] && sinks[n].empty() &&
        !nl.is_primary_output(n))
      continue;
    e.emit("HSC002", nl.net_name(n),
           "net " + quoted(nl.net_name(n)) +
               " has no driver and is not a primary input");
  }

  // HSC048: registers with undriven data or clock nets.
  for (const netlist::Register& r : nl.registers()) {
    if (!net_driven(r.data_in))
      e.emit("HSC048", r.name,
             "register " + quoted(r.name) + " data net " +
                 quoted(nl.net_name(r.data_in)) + " is undriven");
    if (r.clock != netlist::kNoNet && !net_driven(r.clock))
      e.emit("HSC048", r.name,
             "register " + quoted(r.name) + " clock net " +
                 quoted(nl.net_name(r.clock)) + " is undriven");
  }

  // Per-gate scans: HSC009 arity, HSC004 duplicate fanins, HSC003 dead
  // outputs.
  for (GateId g = 0; g < ng; ++g) {
    const netlist::Gate& gate = nl.gate(g);
    if (gate.type == nullptr) {
      e.emit("HSC009", gate.name,
             "gate " + quoted(gate.name) + " has no cell type");
    } else if (gate.fanins.size() != gate.type->num_inputs) {
      e.emit("HSC009", gate.name,
             "gate " + quoted(gate.name) + " has " +
                 std::to_string(gate.fanins.size()) + " fanin(s) but cell " +
                 quoted(gate.type->name) + " expects " +
                 std::to_string(gate.type->num_inputs));
    }
    std::vector<NetId> fanins = gate.fanins;
    std::sort(fanins.begin(), fanins.end());
    const auto dup = std::adjacent_find(fanins.begin(), fanins.end());
    if (dup != fanins.end())
      e.emit("HSC004", gate.name,
             "gate " + quoted(gate.name) + " has net " +
                 quoted(nl.net_name(*dup)) + " on more than one input pin");
    if (sinks[gate.output].empty() && !nl.is_primary_output(gate.output) &&
        !reg_data[gate.output] && !reg_clock[gate.output])
      e.emit("HSC003", gate.name,
             "gate " + quoted(gate.name) + " output net " +
                 quoted(nl.net_name(gate.output)) +
                 " drives nothing and is not a primary output");
  }

  // Forward reachability from the launch points — primary inputs plus
  // register outputs (a flop launches its cone every cycle) — for HSC005.
  std::vector<uint8_t> net_fwd(nn, 0);
  std::vector<uint8_t> gate_fwd(ng, 0);
  {
    std::vector<NetId> queue;
    const auto seed = [&](NetId n) {
      if (!net_fwd[n]) {
        net_fwd[n] = 1;
        queue.push_back(n);
      }
    };
    for (const NetId n : nl.primary_inputs()) seed(n);
    for (const netlist::Register& r : nl.registers()) seed(r.data_out);
    for (size_t head = 0; head < queue.size(); ++head)
      for (const GateId g : sinks[queue[head]])
        if (!gate_fwd[g]) {
          gate_fwd[g] = 1;
          const NetId out = nl.gate(g).output;
          if (!net_fwd[out]) {
            net_fwd[out] = 1;
            queue.push_back(out);
          }
        }
  }
  for (GateId g = 0; g < ng; ++g)
    if (!gate_fwd[g])
      e.emit("HSC005", nl.gate(g).name,
             "gate " + quoted(nl.gate(g).name) +
                 " is unreachable from every primary input");

  // Backward reachability from the primary outputs for HSC006 (gates that
  // have fanout; fanout-free gates are HSC003's). The walk crosses
  // registers — an observed flop observes its data cone and its clock —
  // so state-holding logic does not read as dead.
  std::vector<uint8_t> net_bwd(nn, 0);
  std::vector<uint8_t> gate_bwd(ng, 0);
  {
    std::vector<NetId> queue;
    const auto seed = [&](NetId n) {
      if (!net_bwd[n]) {
        net_bwd[n] = 1;
        queue.push_back(n);
      }
    };
    for (const NetId n : nl.primary_outputs()) seed(n);
    for (size_t head = 0; head < queue.size(); ++head) {
      const NetId n = queue[head];
      const GateId g = nl.driver(n);
      if (g != kNoGate && !gate_bwd[g]) {
        gate_bwd[g] = 1;
        for (const NetId f : nl.gate(g).fanins) seed(f);
      }
      if (const netlist::RegId r = nl.register_driver(n);
          r != netlist::kNoReg) {
        seed(nl.reg(r).data_in);
        if (nl.reg(r).clock != netlist::kNoNet) seed(nl.reg(r).clock);
      }
    }
  }
  for (GateId g = 0; g < ng; ++g)
    if (!gate_bwd[g] && !sinks[nl.gate(g).output].empty())
      e.emit("HSC006", nl.gate(g).name,
             "gate " + quoted(nl.gate(g).name) +
                 " has fanout but reaches no primary output");

  // HSC050: registers whose state is never observable at a primary output
  // (their data_out is not on any backward-reachable path).
  for (const netlist::Register& r : nl.registers())
    if (!net_bwd[r.data_out])
      e.emit("HSC050", r.name,
             "register " + quoted(r.name) + " output net " +
                 quoted(nl.net_name(r.data_out)) +
                 " never reaches a primary output");

  // HSC007: port anomalies — PI marked PO, duplicate net/gate names.
  for (NetId n = 0; n < nn; ++n)
    if (nl.is_primary_input(n) && nl.is_primary_output(n))
      e.emit("HSC007", nl.net_name(n),
             "net " + quoted(nl.net_name(n)) +
                 " is marked both primary input and primary output");
  {
    std::map<std::string_view, size_t> net_names;
    for (NetId n = 0; n < nn; ++n) ++net_names[nl.net_name(n)];
    for (const auto& [name, count] : net_names)
      if (count > 1)
        e.emit("HSC007", std::string(name),
               std::to_string(count) + " nets share the name " +
                   quoted(std::string(name)));
    std::map<std::string_view, size_t> gate_names;
    for (GateId g = 0; g < ng; ++g) ++gate_names[nl.gate(g).name];
    for (const auto& [name, count] : gate_names)
      if (count > 1)
        e.emit("HSC007", std::string(name),
               std::to_string(count) + " gates share the name " +
                   quoted(std::string(name)));
  }

  // HSC010: unused primary inputs (feeding a register's data or clock pin
  // counts as use).
  for (const NetId n : nl.primary_inputs())
    if (sinks[n].empty() && !nl.is_primary_output(n) && !reg_data[n] &&
        !reg_clock[n])
      e.emit("HSC010", nl.net_name(n),
             "primary input " + quoted(nl.net_name(n)) + " drives nothing");
}

/// --- numeric rules ---------------------------------------------------------

/// Scan the live edges of a graph for non-finite / negative delay forms.
/// `where` prefixes the diagnostic object ("" or "model 'm' ").
void scan_graph(Emitter& e, const timing::TimingGraph& g,
                const std::string& where) {
  for (timing::EdgeId i = 0; i < g.num_edge_slots(); ++i) {
    if (!g.edge_alive(i)) continue;
    const timing::TimingEdge& ed = g.edge(i);
    const std::string loc = where + "edge " + g.vertex(ed.from).name +
                            " -> " + g.vertex(ed.to).name;
    const timing::CanonicalForm& d = ed.delay;
    bool finite = std::isfinite(d.nominal()) && std::isfinite(d.random());
    for (const double c : d.corr()) finite = finite && std::isfinite(c);
    if (!finite) {
      e.emit("HSC020", loc,
             loc + " has a non-finite delay (NaN or Inf in the nominal, a "
                   "coefficient, or the random part)");
      continue;  // negative checks are meaningless on NaN
    }
    if (d.nominal() < 0.0)
      e.emit("HSC021", loc, loc + " has negative nominal delay " +
                                std::to_string(d.nominal()));
    if (d.random() < 0.0)
      e.emit("HSC022", loc, loc + " has negative random sigma " +
                                std::to_string(d.random()));
  }
}

/// Variation-space and parameter-table sanity. `graph_dim` is the
/// coefficient dimension the forms actually use.
void scan_space(Emitter& e, const variation::VariationSpace& s,
                size_t graph_dim, const std::string& where) {
  if (s.num_params() == 0)
    e.emit("HSC023", where, where + ": variation space has no parameters");
  else if (s.num_components() == 0)
    e.emit("HSC023", where,
           where + ": PCA retained zero spatial components (explained " +
               std::to_string(s.pca().explained) + ")");
  if (graph_dim != s.dim())
    e.emit("HSC023", where,
           where + ": graph coefficient dimension " +
               std::to_string(graph_dim) + " != space dimension " +
               std::to_string(s.dim()));
  for (size_t k = 0; k < s.pca().eigenvalues.size(); ++k)
    if (!std::isfinite(s.pca().eigenvalues[k])) {
      e.emit("HSC023", where,
             where + ": PCA eigenvalue " + std::to_string(k) +
                 " is non-finite");
      break;
    }
  const variation::ParameterSet& ps = s.parameters();
  for (size_t p = 0; p < ps.size(); ++p) {
    const variation::ProcessParameter& pp = ps.at(p);
    if (!std::isfinite(pp.sigma_rel) || pp.sigma_rel <= 0.0)
      e.emit("HSC024", pp.name,
             where + ": parameter " + quoted(pp.name) +
                 " has non-positive or non-finite sigma " +
                 std::to_string(pp.sigma_rel));
    const double sum = pp.global_frac + pp.local_frac + pp.random_frac;
    if (pp.global_frac < 0.0 || pp.local_frac < 0.0 || pp.random_frac < 0.0 ||
        !std::isfinite(sum) || std::abs(sum - 1.0) > 1e-9)
      e.emit("HSC024", pp.name,
             where + ": parameter " + quoted(pp.name) +
                 " variance fractions sum to " + std::to_string(sum) +
                 " (need non-negative fractions summing to 1)");
  }
  if (!std::isfinite(ps.load_sigma_rel) || ps.load_sigma_rel < 0.0)
    e.emit("HSC024", where,
           where + ": load_sigma_rel " + std::to_string(ps.load_sigma_rel) +
               " is negative or non-finite");
}

/// Full model scan: graph numerics, space sanity, boundary-vector arity.
void check_model(Emitter& e, const model::TimingModel& m,
                 const std::string& where) {
  scan_graph(e, m.graph(), where);
  if (m.variation().space == nullptr) {
    e.emit("HSC023", where, where + ": model has no variation space");
  } else {
    scan_space(e, *m.variation().space, m.graph().dim(), where);
    // PCA/grid incompatibility: the loading matrix must have one row per
    // grid of the module's partition.
    const linalg::PcaResult& pca = m.variation().space->pca();
    if (pca.loadings.rows() != m.variation().space->num_grids())
      e.emit("HSC046", where,
             where + ": PCA loading matrix has " +
                 std::to_string(pca.loadings.rows()) + " rows for " +
                 std::to_string(m.variation().space->num_grids()) +
                 " grids");
  }
  const size_t ni = m.graph().inputs().size();
  const size_t no = m.graph().outputs().size();
  if (!m.boundary().input_cap.empty() && m.boundary().input_cap.size() != ni)
    e.emit("HSC043", where,
           where + ": boundary input_cap has " +
               std::to_string(m.boundary().input_cap.size()) +
               " entries for " + std::to_string(ni) + " input ports");
  if (!m.boundary().output_drive_res.empty() &&
      m.boundary().output_drive_res.size() != no)
    e.emit("HSC043", where,
           where + ": boundary output_drive_res has " +
               std::to_string(m.boundary().output_drive_res.size()) +
               " entries for " + std::to_string(no) + " output ports");
}

/// --- hierarchy rules --------------------------------------------------------

/// Per-instance pass (parallelized): off-die placement, netlist<->model
/// stitch-boundary agreement, and — on the first instance using each
/// distinct model — the model scan and the sigma_scale arity check.
void check_instance(Emitter& e, const hier::HierDesign& d, size_t i,
                    const hier::HierOptions& hopts, bool owns_model) {
  const hier::ModuleInstance& inst = d.instances()[i];
  const std::string iname =
      inst.name.empty() ? "#" + std::to_string(i) : inst.name;
  if (inst.model == nullptr) {
    e.emit("HSC040", iname,
           "instance " + quoted(iname) + " has no timing model");
    return;
  }
  const model::TimingModel& m = *inst.model;

  // HSC045: instance footprint inside the design die (same 1e-9 tolerance
  // as HierDesign::validate).
  constexpr double kTol = 1e-9;
  const placement::Die& die = d.die();
  const placement::Die& mdie = m.die();
  if (inst.origin.x < -kTol || inst.origin.y < -kTol ||
      inst.origin.x + mdie.width > die.width + kTol ||
      inst.origin.y + mdie.height > die.height + kTol)
    e.emit("HSC045", iname,
           "instance " + quoted(iname) + " at (" +
               std::to_string(inst.origin.x) + ", " +
               std::to_string(inst.origin.y) + ") with die " +
               std::to_string(mdie.width) + " x " +
               std::to_string(mdie.height) +
               " extends beyond the design die " +
               std::to_string(die.width) + " x " +
               std::to_string(die.height));

  // HSC043: the stitch boundary — a netlist-backed instance must agree
  // with its model in port count *and* order.
  if (inst.netlist != nullptr) {
    const netlist::Netlist& nl = *inst.netlist;
    const size_t ni = m.graph().inputs().size();
    const size_t no = m.graph().outputs().size();
    if (nl.primary_inputs().size() != ni) {
      e.emit("HSC043", iname,
             "instance " + quoted(iname) + " netlist has " +
                 std::to_string(nl.primary_inputs().size()) +
                 " primary inputs but model " + quoted(m.name()) + " has " +
                 std::to_string(ni) + " input ports");
    } else {
      const std::vector<std::string> names = m.input_names();
      for (size_t k = 0; k < ni; ++k)
        if (nl.net_name(nl.primary_inputs()[k]) != names[k]) {
          e.emit("HSC043", iname,
                 "instance " + quoted(iname) + " input port " +
                     std::to_string(k) + " is " +
                     quoted(nl.net_name(nl.primary_inputs()[k])) +
                     " in the netlist but " + quoted(names[k]) +
                     " in model " + quoted(m.name()));
          break;
        }
    }
    // Outputs are matched positionally only: model reduction may merge a
    // primary-output vertex into its upstream driver, so an extracted
    // model's output names legitimately differ from the netlist's PO net
    // names. Input vertices are boundary ports and keep their names.
    if (nl.primary_outputs().size() != no)
      e.emit("HSC043", iname,
             "instance " + quoted(iname) + " netlist has " +
                 std::to_string(nl.primary_outputs().size()) +
                 " primary outputs but model " + quoted(m.name()) +
                 " has " + std::to_string(no) + " output ports");
    if (inst.module_placement == nullptr)
      e.emit("HSC043", iname,
             "instance " + quoted(iname) +
                 " carries a netlist but no module placement (flattening "
                 "and load-aware stitching need both)");
  }

  // Model-level findings are emitted once, by the first instance that uses
  // each distinct model.
  if (owns_model) {
    const std::string where = "model " + quoted(m.name());
    if (!hopts.param_sigma_scale.empty() && m.variation().space != nullptr &&
        hopts.param_sigma_scale.size() !=
            m.variation().space->num_params())
      e.emit("HSC044", m.name(),
             where + ": param_sigma_scale has " +
                 std::to_string(hopts.param_sigma_scale.size()) +
                 " entries for " +
                 std::to_string(m.variation().space->num_params()) +
                 " process parameters");
    check_model(e, m, where);
  }
}

/// Serial design-level pass: endpoint existence, driver counting,
/// cross-instance variation agreement.
void check_design_level(Emitter& e, const hier::HierDesign& d) {
  const auto& insts = d.instances();
  const size_t n = insts.size();

  if (insts.empty())
    e.emit("HSC047", d.name(), "design has no instances");
  if (d.primary_inputs().empty())
    e.emit("HSC047", d.name(), "design has no primary inputs");
  if (d.primary_outputs().empty())
    e.emit("HSC047", d.name(), "design has no primary outputs");

  const auto inst_name = [&](size_t i) {
    return insts[i].name.empty() ? "#" + std::to_string(i) : insts[i].name;
  };
  const auto in_count = [&](size_t i) -> size_t {
    return insts[i].model ? insts[i].model->graph().inputs().size() : 0;
  };
  const auto out_count = [&](size_t i) -> size_t {
    return insts[i].model ? insts[i].model->graph().outputs().size() : 0;
  };
  // Validate one endpoint; returns true when it is usable for driver
  // accounting.
  const auto check_ref = [&](const hier::PortRef& ref, bool is_input,
                             const std::string& what) {
    if (ref.instance >= n) {
      e.emit("HSC040", what,
             what + " references instance " + std::to_string(ref.instance) +
                 " but the design has " + std::to_string(n) + " instances");
      return false;
    }
    const size_t ports = is_input ? in_count(ref.instance)
                                  : out_count(ref.instance);
    if (ref.port >= ports) {
      e.emit("HSC040", what,
             what + " references " +
                 (is_input ? std::string("input") : std::string("output")) +
                 " port " + std::to_string(ref.port) + " of instance " +
                 quoted(inst_name(ref.instance)) + " which has " +
                 std::to_string(ports) +
                 (is_input ? " input ports" : " output ports"));
      return false;
    }
    return true;
  };

  // Driver accounting over valid endpoints.
  std::vector<std::vector<uint32_t>> driven(n);
  for (size_t i = 0; i < n; ++i) driven[i].assign(in_count(i), 0);

  for (size_t c = 0; c < d.connections().size(); ++c) {
    const hier::Connection& con = d.connections()[c];
    const std::string what = "connection " + std::to_string(c);
    (void)check_ref(con.from_output, false, what);
    if (check_ref(con.to_input, true, what))
      ++driven[con.to_input.instance][con.to_input.port];
  }
  for (const hier::PrimaryInput& pi : d.primary_inputs()) {
    const std::string what = "primary input " + quoted(pi.name);
    if (pi.sinks.empty())
      e.emit("HSC042", pi.name, what + " has no sinks");
    for (const hier::PortRef& ref : pi.sinks)
      if (check_ref(ref, true, what)) ++driven[ref.instance][ref.port];
  }
  for (const hier::PrimaryOutput& po : d.primary_outputs())
    (void)check_ref(po.source, false, "primary output " + quoted(po.name));

  for (size_t i = 0; i < n; ++i) {
    const std::vector<std::string> names =
        insts[i].model ? insts[i].model->input_names()
                       : std::vector<std::string>{};
    for (size_t p = 0; p < driven[i].size(); ++p) {
      const std::string port =
          "input " + std::to_string(p) +
          (p < names.size() ? " (" + quoted(names[p]) + ")" : "") +
          " of instance " + quoted(inst_name(i));
      if (driven[i][p] > 1)
        e.emit("HSC041", inst_name(i),
               port + " is driven " + std::to_string(driven[i][p]) +
                   " times");
      else if (driven[i][p] == 0)
        e.emit("HSC042", inst_name(i),
               port +
                   " is driven by no connection and no primary input");
    }
  }

  // HSC046: every model must agree on the process-parameter configuration
  // (the design-level space is built from one parameter set).
  const variation::VariationSpace* ref_space = nullptr;
  std::string ref_model;
  for (size_t i = 0; i < n; ++i) {
    if (insts[i].model == nullptr ||
        insts[i].model->variation().space == nullptr)
      continue;
    const variation::VariationSpace& s = *insts[i].model->variation().space;
    if (ref_space == nullptr) {
      ref_space = &s;
      ref_model = insts[i].model->name();
      continue;
    }
    if (&s == ref_space) continue;
    if (s.num_params() != ref_space->num_params()) {
      e.emit("HSC046", inst_name(i),
             "instance " + quoted(inst_name(i)) + " model " +
                 quoted(insts[i].model->name()) + " has " +
                 std::to_string(s.num_params()) +
                 " process parameters but model " + quoted(ref_model) +
                 " has " + std::to_string(ref_space->num_params()));
      continue;
    }
    for (size_t p = 0; p < s.num_params(); ++p)
      if (s.parameters().at(p).name != ref_space->parameters().at(p).name) {
        e.emit("HSC046", inst_name(i),
               "instance " + quoted(inst_name(i)) + " model " +
                   quoted(insts[i].model->name()) + " parameter " +
                   std::to_string(p) + " is " +
                   quoted(s.parameters().at(p).name) + " but model " +
                   quoted(ref_model) + " has " +
                   quoted(ref_space->parameters().at(p).name));
        break;
      }
  }
}

}  // namespace

/// --- severity ---------------------------------------------------------------

const char* severity_name(Severity s) {
  return kSeverityNames[static_cast<size_t>(s)];
}

Severity severity_from_name(std::string_view name) {
  if (name == "off") return Severity::kOff;
  if (name == "info") return Severity::kInfo;
  if (name == "warning" || name == "warn") return Severity::kWarning;
  if (name == "error") return Severity::kError;
  throw Error("check: unknown severity '" + std::string(name) +
              "' (expected off|info|warning|error)");
}

/// --- catalog ----------------------------------------------------------------

std::span<const RuleInfo> rule_catalog() { return kCatalog; }

const RuleInfo* find_rule(std::string_view id) {
  for (const RuleInfo& r : kCatalog)
    if (r.id == id) return &r;
  return nullptr;
}

/// --- report -----------------------------------------------------------------

Severity Report::worst() const {
  Severity w = Severity::kOff;
  for (const Diagnostic& d : diagnostics) w = std::max(w, d.severity);
  return w;
}

size_t Report::count(Severity s) const {
  size_t c = 0;
  for (const Diagnostic& d : diagnostics) c += d.severity == s ? 1 : 0;
  return c;
}

bool Report::has(std::string_view id) const {
  for (const Diagnostic& d : diagnostics)
    if (d.id == id) return true;
  return false;
}

std::string Report::summary() const {
  std::ostringstream os;
  for (const Diagnostic& d : diagnostics)
    os << severity_name(d.severity) << ' ' << d.id << ' ' << d.object
       << ": " << d.message << '\n';
  return os.str();
}

void merge(Report& into, Report&& from) {
  into.diagnostics.insert(into.diagnostics.end(),
                          std::make_move_iterator(from.diagnostics.begin()),
                          std::make_move_iterator(from.diagnostics.end()));
}

/// --- entry points -----------------------------------------------------------

Report run_checks(const netlist::Netlist& nl, const CheckOptions& options) {
  Report rep;
  rep.subject = nl.name();
  Emitter e(options, rep);
  check_netlist(e, nl);
  return rep;
}

Report run_checks(const timing::TimingGraph& graph, const std::string& subject,
                  const CheckOptions& options) {
  Report rep;
  rep.subject = subject;
  Emitter e(options, rep);
  scan_graph(e, graph, "");
  if (graph.space() != nullptr)
    scan_space(e, *graph.space(), graph.dim(), subject);
  return rep;
}

Report run_checks(const model::TimingModel& model,
                  const CheckOptions& options) {
  Report rep;
  rep.subject = model.name();
  Emitter e(options, rep);
  check_model(e, model, "model " + quoted(model.name()));
  return rep;
}

Report run_checks(const hier::HierDesign& design,
                  const hier::HierOptions& hier_options,
                  const CheckOptions& options, exec::Executor* ex) {
  Report rep;
  rep.subject = design.name();
  const size_t n = design.instances().size();
  rep.instances_checked = n;
  Emitter e(options, rep);

  // Model-level findings belong to the first instance using each model.
  std::vector<uint8_t> owns(n, 0);
  {
    std::map<const model::TimingModel*, size_t> first;
    for (size_t i = 0; i < n; ++i)
      if (design.instances()[i].model != nullptr &&
          first.emplace(design.instances()[i].model, i).second)
        owns[i] = 1;
  }

  // Per-instance pass, fanned over the executor; each slot fills its own
  // report so the merge below is deterministic by instance index.
  std::vector<Report> per(n);
  const auto task = [&](size_t i, exec::Workspace&) {
    Emitter ei(options, per[i]);
    check_instance(ei, design, i, hier_options, owns[i] != 0);
  };
  if (ex != nullptr && n > 0) {
    ex->parallel_for(n, task);
  } else {
    exec::SerialExecutor serial;
    serial.parallel_for(n, task);
  }
  for (size_t i = 0; i < n; ++i) merge(rep, std::move(per[i]));

  check_design_level(e, design);
  return rep;
}

/// --- JSON / exit code -------------------------------------------------------

std::string report_json(const Report& report) {
  std::ostringstream os;
  util::JsonWriter w(os);
  write_report(w, report);
  w.complete();
  return os.str();
}

void write_report(util::JsonWriter& w, const Report& report) {
  w.begin_object();
  w.key("subject").value(report.subject);
  const Severity worst = report.worst();
  w.key("worst").value(report.clean() ? "clean" : severity_name(worst));
  w.key("errors").value(report.count(Severity::kError));
  w.key("warnings").value(report.count(Severity::kWarning));
  w.key("infos").value(report.count(Severity::kInfo));
  w.key("instances").value(report.instances_checked);
  w.key("diagnostics").begin_array();
  for (const Diagnostic& d : report.diagnostics) {
    w.begin_object();
    w.key("id").value(d.id);
    w.key("severity").value(severity_name(d.severity));
    w.key("object").value(d.object);
    w.key("message").value(d.message);
    w.key("hint").value(d.hint);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

int exit_code(const Report& report) {
  switch (report.worst()) {
    case Severity::kError:
      return 2;
    case Severity::kWarning:
      return 1;
    default:
      return 0;
  }
}

}  // namespace hssta::check
