/// \file check.hpp
/// hssta::check — rule-based static design diagnostics (lint) over the
/// representations designs enter the system as: a gate-level Netlist, a
/// bare TimingGraph, a pre-characterized TimingModel, and a stitched
/// hierarchical design. No timing is run; every rule is a structural or
/// numeric scan.
///
/// Each rule has a stable ID (HSC###), a default severity, a precise
/// location (gate/net/port/instance name) and a fix hint, so bad designs
/// are rejected up front with machine-readable diagnostics instead of
/// surfacing as deep exceptions (or silently wrong numbers) inside
/// analyze(), serve or a campaign. Rule IDs are append-only: a shipped ID
/// never changes meaning. See docs/CHECKS.md for the catalog.
///
/// Severities can be overridden per rule through CheckOptions (fed from the
/// flow::Config `check.HSC### = warn|error|info|off` table); kOff
/// suppresses the rule entirely.
///
/// Determinism: diagnostics are emitted in a fixed order (rule family, then
/// object index) regardless of thread count; the hierarchical entry point
/// fans per-instance work over an exec::Executor and merges by instance
/// index.

#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "hssta/check/severity.hpp"
#include "hssta/hier/design.hpp"
#include "hssta/hier/hier_ssta.hpp"
#include "hssta/model/timing_model.hpp"
#include "hssta/netlist/netlist.hpp"
#include "hssta/timing/graph.hpp"

namespace hssta::exec {
class Executor;
}
namespace hssta::util {
class JsonWriter;
}

namespace hssta::check {

/// One emitted diagnostic.
struct Diagnostic {
  std::string id;        ///< stable rule id, e.g. "HSC002"
  Severity severity = Severity::kWarning;  ///< after overrides
  std::string object;    ///< gate/net/port/instance/model name
  std::string message;   ///< what is wrong, with the precise location
  std::string hint;      ///< how to fix it
};

/// Static catalog entry for one rule.
struct RuleInfo {
  std::string_view id;
  Severity default_severity = Severity::kWarning;
  std::string_view family;   ///< "structural" | "numeric" | "hierarchy" |
                             ///< "sequential"
  std::string_view meaning;  ///< one-line description
  std::string_view hint;     ///< generic fix hint
};

/// All shipped rules, ordered by id.
[[nodiscard]] std::span<const RuleInfo> rule_catalog();

/// Catalog lookup; nullptr for an unknown id.
[[nodiscard]] const RuleInfo* find_rule(std::string_view id);

/// Knobs for one checker run.
struct CheckOptions {
  /// Per-rule severity overrides (Severity::kOff suppresses the rule).
  /// Unknown ids are rejected where the table is built (config parsing),
  /// not here.
  SeverityMap severity;
};

/// The result of one checker run.
struct Report {
  std::string subject;                  ///< what was checked (design name)
  std::vector<Diagnostic> diagnostics;  ///< deterministic order
  size_t instances_checked = 0;         ///< hierarchy runs only

  /// Worst severity present; Severity::kOff when clean.
  [[nodiscard]] Severity worst() const;
  [[nodiscard]] size_t count(Severity s) const;
  [[nodiscard]] bool has(std::string_view id) const;
  [[nodiscard]] bool clean() const { return diagnostics.empty(); }
  /// Human-readable multi-line summary ("error HSC002 net 'x': ...").
  [[nodiscard]] std::string summary() const;
};

/// Merge another report's diagnostics into `into` (subject kept).
void merge(Report& into, Report&& from);

/// Structural netlist lint: cycles (with the cycle path printed), undriven
/// nets, zero-fanout gates, duplicate fanin pins, cones unreachable from
/// any PI or reaching no PO, port anomalies, gate arity. Never throws on a
/// bad netlist — that is the point.
[[nodiscard]] Report run_checks(const netlist::Netlist& nl,
                                const CheckOptions& options = {});

/// Numeric lint over a timing graph and its variation space (if any):
/// NaN/Inf/negative delays and sigmas, non-finite canonical-form
/// coefficients, degenerate covariance/PCA dimensions, bad parameter
/// configuration. `subject` names the graph in diagnostics.
[[nodiscard]] Report run_checks(const timing::TimingGraph& graph,
                                const std::string& subject,
                                const CheckOptions& options = {});

/// Model lint: the graph/space checks plus model boundary consistency
/// (port-table and boundary-vector arity).
[[nodiscard]] Report run_checks(const model::TimingModel& model,
                                const CheckOptions& options = {});

/// Hierarchical design lint: connection endpoints, multiply-driven and
/// floating instance inputs, model<->instance port arity/order at stitch
/// boundaries, sigma_scale length, off-die instances, cross-instance
/// variation-space disagreement — plus the model checks for every distinct
/// model, fanned per-instance over `ex` (serial when null). Does not
/// require the design to pass HierDesign::validate().
[[nodiscard]] Report run_checks(const hier::HierDesign& design,
                                const hier::HierOptions& hier_options,
                                const CheckOptions& options = {},
                                exec::Executor* ex = nullptr);

/// JSON form of a report (util::JsonWriter; schema pinned in report_test):
/// {"subject":...,"worst":...,"errors":N,"warnings":N,"infos":N,
///  "instances":N,"diagnostics":[{"id","severity","object","message",
///  "hint"},...]}
[[nodiscard]] std::string report_json(const Report& report);

/// Emit the same report object into an open writer (the embeddable form of
/// report_json; the serve layer uses it to nest reports in responses).
void write_report(util::JsonWriter& w, const Report& report);

/// Process exit code for CLI/CI gating: 2 if any error, 1 if any warning,
/// 0 when clean or info-only.
[[nodiscard]] int exit_code(const Report& report);

}  // namespace hssta::check
