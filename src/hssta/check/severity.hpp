/// \file severity.hpp
/// Severity levels for static design diagnostics, split out of check.hpp so
/// flow::Config can carry a severity-override table (`check.HSC012 = warn`)
/// without pulling the whole checker (and its netlist/hier dependencies)
/// into every config consumer.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace hssta::check {

/// Diagnostic severity, ordered: comparing enum values compares severity.
/// kOff exists only as a config override ("suppress this rule"); no rule
/// defaults to it and no emitted diagnostic carries it.
enum class Severity : uint8_t {
  kOff = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

/// Canonical lowercase name ("off", "info", "warning", "error").
[[nodiscard]] const char* severity_name(Severity s);

/// Parse a severity name; accepts "warn" as an alias for "warning".
/// Throws hssta::Error on anything else.
[[nodiscard]] Severity severity_from_name(std::string_view name);

/// Rule-id -> severity override table (config key family `check.HSC###`).
/// std::map: deterministic iteration order for fingerprints and reports.
using SeverityMap = std::map<std::string, Severity, std::less<>>;

}  // namespace hssta::check
