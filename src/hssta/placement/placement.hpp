/// \file placement.hpp
/// Cell placement. The variation model only consumes cell locations (to map
/// cells into correlation grids), so a row-based placer that lays cells out
/// in topological order — keeping logically adjacent cells spatially
/// adjacent — is a faithful substitute for the paper's (unpublished)
/// placements. See DESIGN.md "Substitutions".

#pragma once

#include <vector>

#include "hssta/netlist/netlist.hpp"

namespace hssta::placement {

/// A point on the die, micrometres.
struct Point {
  double x = 0.0;
  double y = 0.0;
};

/// Die outline, micrometres; origin at (0, 0).
struct Die {
  double width = 0.0;
  double height = 0.0;
};

/// Placement result: one location per gate (its output pin) and per
/// primary input (its port).
struct Placement {
  Die die;
  std::vector<Point> gate_position;  ///< indexed by GateId
  std::vector<Point> input_position; ///< indexed by PI position in netlist

  [[nodiscard]] const Point& gate(netlist::GateId g) const {
    return gate_position.at(g);
  }
};

/// Options for the row placer.
struct PlaceOptions {
  double row_height = 1.4;   ///< um
  double target_aspect = 1.0; ///< width/height of the die
  double utilization = 0.8;  ///< row fill ratio (rest becomes whitespace)
};

/// Place gates in topological order into boustrophedon rows. Primary input
/// ports are spread along the left die edge. Deterministic.
[[nodiscard]] Placement place_rows(const netlist::Netlist& nl,
                                   const PlaceOptions& opts = {});

/// Translate a placement by (dx, dy) — used when instantiating a module at
/// its design-level origin.
[[nodiscard]] Placement translate(const Placement& p, double dx, double dy);

}  // namespace hssta::placement
