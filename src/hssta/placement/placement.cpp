#include "hssta/placement/placement.hpp"

#include <algorithm>
#include <cmath>

#include "hssta/util/error.hpp"

namespace hssta::placement {

using netlist::GateId;
using netlist::Netlist;

Placement place_rows(const Netlist& nl, const PlaceOptions& opts) {
  HSSTA_REQUIRE(opts.row_height > 0 && opts.target_aspect > 0 &&
                    opts.utilization > 0 && opts.utilization <= 1.0,
                "bad placement options");

  // Total cell area decides the die outline for the requested aspect ratio.
  double total_width = 0.0;
  for (GateId g = 0; g < nl.num_gates(); ++g)
    total_width += nl.gate(g).type->width;
  const double area =
      total_width * opts.row_height / opts.utilization + 1e-9;
  double die_width = std::sqrt(area * opts.target_aspect);
  const size_t rows = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(area / (die_width * opts.row_height))));
  // Rebalance width so rows * row_height * width == area.
  die_width = area / (static_cast<double>(rows) * opts.row_height);

  Placement out;
  out.die = Die{die_width, static_cast<double>(rows) * opts.row_height};
  out.gate_position.resize(nl.num_gates());

  // Order cells by DFS post-order from the primary outputs: each logic cone
  // is laid out contiguously, which keeps connected cells spatially close
  // (the property the grid correlation model feeds on). Post-order is also
  // a valid topological order. Gates unreachable from any PO are appended.
  std::vector<GateId> order;
  order.reserve(nl.num_gates());
  {
    std::vector<uint8_t> state(nl.num_gates(), 0);  // 0 new, 1 open, 2 done
    std::vector<std::pair<GateId, size_t>> stack;
    auto visit = [&](GateId root) {
      if (root == netlist::kNoGate || state[root]) return;
      stack.emplace_back(root, 0);
      state[root] = 1;
      while (!stack.empty()) {
        auto& [g, pin] = stack.back();
        const auto& fanins = nl.gate(g).fanins;
        bool descended = false;
        while (pin < fanins.size()) {
          const GateId d = nl.driver(fanins[pin++]);
          if (d != netlist::kNoGate && state[d] == 0) {
            state[d] = 1;
            stack.emplace_back(d, 0);
            descended = true;
            break;
          }
        }
        if (!descended && (stack.back().second >= fanins.size())) {
          state[g] = 2;
          order.push_back(g);
          stack.pop_back();
        }
      }
    };
    for (netlist::NetId po : nl.primary_outputs()) visit(nl.driver(po));
    for (GateId g = 0; g < nl.num_gates(); ++g)
      if (state[g] == 0) order.push_back(g);
  }

  // Walk cells along a continuous serpentine of total length
  // rows * die_width; each cell sits at its center position, so the die
  // outline cannot overflow (cells spanning a row break land by center).
  const double pitch_scale = 1.0 / opts.utilization;
  double cursor = 0.0;
  for (GateId g : order) {
    const double w = nl.gate(g).type->width * pitch_scale;
    const double center = cursor + w / 2.0;
    size_t row = static_cast<size_t>(center / die_width);
    row = std::min(row, rows - 1);
    const double offset =
        std::clamp(center - static_cast<double>(row) * die_width, 0.0,
                   die_width);
    const double x = (row % 2 == 0) ? offset : die_width - offset;
    out.gate_position[g] =
        Point{x, (static_cast<double>(row) + 0.5) * opts.row_height};
    cursor += w;
  }

  // Primary input ports along the left edge, evenly spread.
  const size_t n_pi = nl.primary_inputs().size();
  out.input_position.resize(n_pi);
  for (size_t i = 0; i < n_pi; ++i) {
    const double frac =
        n_pi > 1 ? static_cast<double>(i) / static_cast<double>(n_pi - 1)
                 : 0.5;
    out.input_position[i] = Point{0.0, frac * out.die.height};
  }
  return out;
}

Placement translate(const Placement& p, double dx, double dy) {
  Placement out = p;
  for (Point& pt : out.gate_position) {
    pt.x += dx;
    pt.y += dy;
  }
  for (Point& pt : out.input_position) {
    pt.x += dx;
    pt.y += dy;
  }
  return out;
}

}  // namespace hssta::placement
