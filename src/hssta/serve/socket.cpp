#include "hssta/serve/socket.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "hssta/serve/engine.hpp"
#include "hssta/util/error.hpp"

namespace hssta::serve {

namespace {

sockaddr_un make_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  HSSTA_REQUIRE(path.size() < sizeof(addr.sun_path),
                "socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

SocketServer::SocketServer(Engine& engine, std::string path)
    : engine_(engine), path_(std::move(path)) {
  const sockaddr_un addr = make_address(path_);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  HSSTA_REQUIRE(listen_fd_ >= 0,
                std::string("socket() failed: ") + std::strerror(errno));
  ::unlink(path_.c_str());  // replace a stale socket file
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("bind(" + path_ + ") failed: " + std::strerror(err));
  }
  if (::listen(listen_fd_, 64) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(path_.c_str());
    throw Error("listen(" + path_ + ") failed: " + std::strerror(err));
  }
  acceptor_ = std::thread([this] { accept_loop(); });
}

SocketServer::~SocketServer() { stop(); }

void SocketServer::stop() {
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  // Wake the acceptor, then every reader; join them all.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const std::shared_ptr<Conn>& c : conns_) {
      std::lock_guard<std::mutex> wl(c->mu);
      if (c->fd >= 0) ::shutdown(c->fd, SHUT_RDWR);
    }
  }
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    readers.swap(readers_);
  }
  for (std::thread& t : readers)
    if (t.joinable()) t.join();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const std::shared_ptr<Conn>& c : conns_) {
      std::lock_guard<std::mutex> wl(c->mu);
      if (c->fd >= 0) {
        ::close(c->fd);
        c->fd = -1;
      }
    }
    conns_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(path_.c_str());
}

void SocketServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (stop()) or fatally broken
    }
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    conns_.push_back(conn);
    readers_.emplace_back([this, conn] { read_loop(conn); });
  }
}

void SocketServer::write_line(const std::shared_ptr<Conn>& conn,
                              const std::string& line) {
  std::lock_guard<std::mutex> lock(conn->mu);
  if (conn->fd < 0) return;  // client already gone; response dropped
  std::string out = line;
  out.push_back('\n');
  size_t off = 0;
  while (off < out.size()) {
    const ssize_t n =
        ::send(conn->fd, out.data() + off, out.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // broken pipe: client disconnected mid-response
    }
    off += static_cast<size_t>(n);
  }
}

void SocketServer::read_loop(const std::shared_ptr<Conn>& conn) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF or shutdown: connection done
    buffer.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    for (size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (line.empty()) continue;
      // The callback holds the Conn alive past this reader's exit; the
      // engine drains every accepted request, so no response is lost.
      engine_.submit(std::move(line), [conn](std::string response) {
        write_line(conn, response);
      });
    }
    buffer.erase(0, start);
  }
}

}  // namespace hssta::serve
