/// \file engine.hpp
/// serve::Engine — the long-running analysis service behind hssta_serve.
///
/// One Engine holds the process-wide warm state the hierarchical flow
/// exists to amortize: loaded chain designs with their extracted models
/// (shared, immutable after load) plus one fully analyzed incremental
/// base per design. Clients open sessions against a design; each session
/// owns a private incr::DesignState *copy* of the warm base — the clean
/// prefix (stitched graph, provenance, design PCA, arrivals) is shared by
/// copy, none of it recomputes — and drives ECO what-ifs through the
/// change API. Nothing cold happens per request: a session's analyze
/// re-propagates only the dirty cone, exactly like `hssta_cli eco`, and
/// returns bit-identical numbers.
///
/// Concurrency rides the existing exec::Executor as a batch dispatcher:
///
///   submit() ──► BoundedQueue (admission control: a full queue answers
///                "backpressure" immediately instead of stalling readers)
///        dispatcher thread pops a batch, groups it — session verbs by
///        session id, everything else into one ordered control group —
///        and fans the groups across the executor with one parallel_for.
///
/// Per-session serialization falls out of the grouping: all of a
/// session's requests in a batch run in one group, in arrival order, so
/// a session's changes stay ordered no matter how many connections issue
/// them. Sessions analyze on private serial executors (executor regions
/// do not nest), so every response is bit-identical to the equivalent
/// one-shot CLI analysis at any client count and any `threads` setting.
/// Responses are delivered in batch arrival order after the batch drains;
/// per-submitter request order is therefore preserved end to end.
///
/// Shutdown is graceful by construction: the shutdown verb closes the
/// queue (new requests are rejected with "shutting_down"), the dispatcher
/// drains every request accepted before the close — in-flight sweeps
/// included — and only then signals stopped().
///
/// Sessions idle longer than idle_timeout_seconds are evicted between
/// batches; a request against an evicted id gets an "unknown_session"
/// error naming the eviction.

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "hssta/exec/executor.hpp"
#include "hssta/exec/queue.hpp"
#include "hssta/flow/design.hpp"
#include "hssta/incr/design_state.hpp"
#include "hssta/serve/protocol.hpp"

namespace hssta::serve {

struct EngineOptions {
  /// Worker threads for the request-batch executor (0 = hardware
  /// concurrency). Purely a throughput knob: responses are bit-identical
  /// at any width.
  size_t threads = 0;
  /// Bounded request queue capacity — the admission-control depth. A full
  /// queue rejects new requests with a "backpressure" error immediately.
  size_t queue_capacity = 256;
  /// Max requests dispatched per batch.
  size_t batch_max = 32;
  /// Sessions idle longer than this are evicted between batches
  /// (0 disables eviction).
  double idle_timeout_seconds = 600.0;
  /// Max concurrently open sessions; opens beyond it get "saturated".
  size_t max_sessions = 256;
  /// Base configuration for load_design and swap-variant loading.
  /// Server-side designs and sessions always analyze serially inside
  /// their worker slot (parallelism comes from batching requests across
  /// sessions), so cfg.threads is deliberately ignored here.
  flow::Config config;
};

/// Monotonic service counters (the `stats` verb's payload).
struct EngineStats {
  uint64_t requests = 0;
  uint64_t responses_ok = 0;
  uint64_t responses_error = 0;
  uint64_t rejected_backpressure = 0;
  uint64_t rejected_shutdown = 0;
  uint64_t batches = 0;
  uint64_t sessions_opened = 0;
  uint64_t sessions_closed = 0;
  uint64_t sessions_evicted = 0;
  uint64_t ecos = 0;
  uint64_t analyzes = 0;
  uint64_t sweeps = 0;
};

class Engine {
 public:
  /// Receives exactly one response line (no trailing newline) per
  /// submitted request.
  using Done = std::function<void(std::string)>;

  explicit Engine(EngineOptions opts = {});
  /// Stops (as if by request_stop) and drains before destruction.
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Submit one request line. `done` is invoked either by the dispatcher
  /// after the request's batch completes (per-submitter arrival order
  /// preserved) or inline from submit() itself when the request is
  /// rejected up front (queue saturated / shutting down) — rejections may
  /// therefore overtake queued responses; they carry "code" so pipelined
  /// clients can tell.
  void submit(std::string line, Done done);

  /// Synchronous round trip (tests, the stdio transport).
  [[nodiscard]] std::string request(const std::string& line);

  /// True once shutdown was processed (or request_stop called) and every
  /// accepted request has been answered.
  [[nodiscard]] bool stopped() const;
  /// Block until stopped() — the daemon main's parking spot.
  void wait_until_stopped();
  /// Stop as if a shutdown request had been processed (EOF on the
  /// controlling transport, signal handler). Idempotent.
  void request_stop();

  [[nodiscard]] const EngineOptions& options() const { return opts_; }
  [[nodiscard]] EngineStats stats_snapshot() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    std::string line;
    Done done;
  };

  /// One parsed request within a batch, plus its slot for the response.
  struct Work {
    Pending pending;
    Request request;
    bool parsed = false;
    std::string response;  ///< pre-filled with the parse error when !parsed
  };

  struct Session {
    uint64_t id = 0;
    std::string design;
    incr::DesignState state;
    Clock::time_point last_used;
    uint64_t ecos = 0;

    Session(uint64_t id_, std::string design_, incr::DesignState state_)
        : id(id_), design(std::move(design_)), state(std::move(state_)) {}
  };

  /// One loaded design: the assembled flow::Design (keeps models/modules
  /// alive and caches the from-scratch analysis) plus the analyzed warm
  /// base sessions copy from. Immutable after load.
  struct Loaded {
    flow::Design design;
    explicit Loaded(flow::Design d) : design(std::move(d)) {}
  };

  void dispatch_loop();
  void run_batch(std::vector<Pending> batch);
  void evict_idle_sessions();

  /// Verb handlers; run on executor workers (or inline). Each returns the
  /// full response line.
  [[nodiscard]] std::string handle(const Request& req);
  [[nodiscard]] std::string handle_load_design(const Request& req);
  [[nodiscard]] std::string handle_open_session(const Request& req);
  [[nodiscard]] std::string handle_eco(const Request& req);
  [[nodiscard]] std::string handle_analyze(const Request& req);
  [[nodiscard]] std::string handle_sweep(const Request& req);
  [[nodiscard]] std::string handle_check(const Request& req);
  [[nodiscard]] std::string handle_stats(const Request& req);
  [[nodiscard]] std::string handle_save_session(const Request& req);
  [[nodiscard]] std::string handle_restore_session(const Request& req);
  [[nodiscard]] std::string handle_close_session(const Request& req);
  [[nodiscard]] std::string handle_shutdown(const Request& req);

  /// Locate a session or fill `error` with the right code/message.
  [[nodiscard]] std::shared_ptr<Session> find_session(uint64_t id,
                                                      std::string& error,
                                                      const char*& code);

  EngineOptions opts_;
  std::shared_ptr<exec::Executor> exec_;
  exec::BoundedQueue<Pending> queue_;
  std::thread dispatcher_;

  /// Loaded designs + sessions. The map structure is guarded by mu_;
  /// Session objects themselves are only touched by their (unique) batch
  /// group, Loaded objects only by the control group after load.
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Loaded>> designs_;
  std::map<uint64_t, std::shared_ptr<Session>> sessions_;
  std::set<uint64_t> evicted_ids_;
  uint64_t next_session_ = 1;

  std::atomic<bool> stop_requested_{false};
  mutable std::mutex stopped_mu_;
  std::condition_variable stopped_cv_;
  bool stopped_ = false;

  /// Monotonic counters (atomics: bumped from worker threads).
  std::atomic<uint64_t> n_requests_{0}, n_ok_{0}, n_error_{0};
  std::atomic<uint64_t> n_backpressure_{0}, n_rejected_shutdown_{0};
  std::atomic<uint64_t> n_batches_{0};
  std::atomic<uint64_t> n_opened_{0}, n_closed_{0}, n_evicted_{0};
  std::atomic<uint64_t> n_ecos_{0}, n_analyzes_{0}, n_sweeps_{0};
  Clock::time_point started_ = Clock::now();
};

}  // namespace hssta::serve
