#include "hssta/serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "hssta/util/error.hpp"

namespace hssta::serve {

Client::Client(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  HSSTA_REQUIRE(socket_path.size() < sizeof(addr.sun_path),
                "socket path too long: " + socket_path);
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  HSSTA_REQUIRE(fd_ >= 0,
                std::string("socket() failed: ") + std::strerror(errno));
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw Error("connect(" + socket_path +
                ") failed: " + std::strerror(err));
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

std::string Client::request(const std::string& line) {
  send(line);
  return recv();
}

void Client::send(const std::string& line) {
  HSSTA_REQUIRE(fd_ >= 0, "client is not connected");
  std::string out = line;
  out.push_back('\n');
  size_t off = 0;
  while (off < out.size()) {
    const ssize_t n =
        ::send(fd_, out.data() + off, out.size() - off, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    HSSTA_REQUIRE(n > 0, std::string("send() failed: ") +
                             (n < 0 ? std::strerror(errno) : "closed"));
    off += static_cast<size_t>(n);
  }
}

std::string Client::recv() {
  HSSTA_REQUIRE(fd_ >= 0, "client is not connected");
  for (;;) {
    const size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    HSSTA_REQUIRE(n > 0, "connection closed before a full response line");
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

}  // namespace hssta::serve
