#include "hssta/serve/protocol.hpp"

#include <sstream>

#include "hssta/flow/chain.hpp"
#include "hssta/util/error.hpp"

namespace hssta::serve {

namespace {

Verb parse_verb(const std::string& v) {
  if (v == "load_design") return Verb::kLoadDesign;
  if (v == "open_session") return Verb::kOpenSession;
  if (v == "eco") return Verb::kEco;
  if (v == "analyze") return Verb::kAnalyze;
  if (v == "sweep") return Verb::kSweep;
  if (v == "check") return Verb::kCheck;
  if (v == "stats") return Verb::kStats;
  if (v == "save_session") return Verb::kSaveSession;
  if (v == "restore_session") return Verb::kRestoreSession;
  if (v == "close_session") return Verb::kCloseSession;
  if (v == "shutdown") return Verb::kShutdown;
  throw Error("unknown verb '" + v + "'");
}

size_t count_field(const util::JsonValue& obj, const std::string& key) {
  return static_cast<size_t>(obj.at(key).as_count(key));
}

std::vector<ChangeSpec> parse_changes(const util::JsonValue& arr,
                                      const char* what) {
  HSSTA_REQUIRE(arr.is_array(), std::string(what) + " must be an array");
  std::vector<ChangeSpec> out;
  out.reserve(arr.items().size());
  for (const util::JsonValue& c : arr.items())
    out.push_back(parse_change_spec(c));
  return out;
}

}  // namespace

ChangeSpec parse_change_spec(const util::JsonValue& c) {
  HSSTA_REQUIRE(c.is_object(), "change must be an object");
  const std::string& op = c.at("op").as_string();
  ChangeSpec spec;
  if (op == "swap") {
    spec.op = ChangeSpec::Op::kSwap;
    spec.inst = count_field(c, "inst");
    spec.file = c.at("file").as_string();
    HSSTA_REQUIRE(!spec.file.empty(), "swap change needs a non-empty file");
  } else if (op == "move") {
    spec.op = ChangeSpec::Op::kMove;
    spec.inst = count_field(c, "inst");
    spec.x = c.at("x").as_number();
    spec.y = c.at("y").as_number();
  } else if (op == "rewire") {
    spec.op = ChangeSpec::Op::kRewire;
    spec.conn = count_field(c, "conn");
    spec.from = hier::PortRef{count_field(c, "from_inst"),
                              count_field(c, "from_port")};
    spec.to =
        hier::PortRef{count_field(c, "to_inst"), count_field(c, "to_port")};
  } else if (op == "sigma") {
    spec.op = ChangeSpec::Op::kSigma;
    spec.param = count_field(c, "param");
    spec.scale = c.at("scale").as_number();
  } else {
    throw Error("unknown change op '" + op + "'");
  }
  return spec;
}

bool is_session_verb(Verb v) {
  return v == Verb::kEco || v == Verb::kAnalyze || v == Verb::kSweep ||
         v == Verb::kSaveSession || v == Verb::kCloseSession;
}

Request parse_request(const std::string& line) {
  const util::JsonValue doc = util::JsonReader::parse(line);
  HSSTA_REQUIRE(doc.is_object(), "request must be a JSON object");
  Request req;
  req.verb = parse_verb(doc.at("verb").as_string());
  if (const util::JsonValue* id = doc.find("id"))
    req.id = id->as_count("id");

  switch (req.verb) {
    case Verb::kLoadDesign: {
      req.name = doc.at("name").as_string();
      HSSTA_REQUIRE(!req.name.empty(), "load_design needs a non-empty name");
      const util::JsonValue& files = doc.at("files");
      HSSTA_REQUIRE(files.is_array() && files.items().size() >= 2,
                    "load_design needs a files array of >= 2 entries");
      for (const util::JsonValue& f : files.items())
        req.files.push_back(f.as_string());
      break;
    }
    case Verb::kOpenSession:
    case Verb::kCheck:
      req.design = doc.at("design").as_string();
      break;
    case Verb::kEco:
      req.session = doc.at("session").as_count("session");
      req.changes = parse_changes(doc.at("changes"), "changes");
      HSSTA_REQUIRE(!req.changes.empty(), "eco needs at least one change");
      break;
    case Verb::kAnalyze:
      req.session = doc.at("session").as_count("session");
      if (const util::JsonValue* ch = doc.find("changes"))
        req.changes = parse_changes(*ch, "changes");
      break;
    case Verb::kSweep: {
      req.session = doc.at("session").as_count("session");
      const util::JsonValue& arr = doc.at("scenarios");
      HSSTA_REQUIRE(arr.is_array() && !arr.items().empty(),
                    "sweep needs a non-empty scenarios array");
      for (size_t i = 0; i < arr.items().size(); ++i) {
        const util::JsonValue& sc = arr.items()[i];
        HSSTA_REQUIRE(sc.is_object(), "scenario must be an object");
        ScenarioSpec spec;
        if (const util::JsonValue* label = sc.find("label"))
          spec.label = label->as_string();
        else
          spec.label = "s" + std::to_string(i);
        spec.changes = parse_changes(sc.at("changes"), "scenario changes");
        req.scenarios.push_back(std::move(spec));
      }
      break;
    }
    case Verb::kSaveSession:
      req.session = doc.at("session").as_count("session");
      req.file = doc.at("file").as_string();
      HSSTA_REQUIRE(!req.file.empty(),
                    "save_session needs a non-empty file");
      break;
    case Verb::kRestoreSession:
      req.file = doc.at("file").as_string();
      HSSTA_REQUIRE(!req.file.empty(),
                    "restore_session needs a non-empty file");
      break;
    case Verb::kCloseSession:
      req.session = doc.at("session").as_count("session");
      break;
    case Verb::kStats:
    case Verb::kShutdown:
      break;
  }
  return req;
}

incr::Change resolve_change(const ChangeSpec& spec, const flow::Config& cfg) {
  switch (spec.op) {
    case ChangeSpec::Op::kSwap:
      return incr::ReplaceModule{spec.inst,
                                 flow::load_variant_model(spec.file, cfg)};
    case ChangeSpec::Op::kMove:
      return incr::MoveInstance{spec.inst, spec.x, spec.y};
    case ChangeSpec::Op::kRewire:
      return incr::RewireConnection{spec.conn, spec.from, spec.to};
    case ChangeSpec::Op::kSigma:
      break;
  }
  return incr::SigmaScale{spec.param, spec.scale};
}

void begin_response(util::JsonWriter& w, const std::optional<uint64_t>& id,
                    bool ok) {
  w.begin_object();
  if (id) w.key("id").value(*id);
  w.key("ok").value(ok);
}

std::string error_response(const std::optional<uint64_t>& id, const char* code,
                           const std::string& message) {
  std::ostringstream os;
  util::JsonWriter w(os);
  begin_response(w, id, /*ok=*/false);
  w.key("code").value(code);
  w.key("error").value(message);
  w.end_object();
  return os.str();
}

}  // namespace hssta::serve
