/// \file socket.hpp
/// serve::SocketServer — the Unix-domain-socket transport in front of a
/// serve::Engine.
///
/// One listener thread accepts connections; each connection gets a reader
/// thread that splits the byte stream into lines and submits every line
/// to the engine. Responses are written back (one line each) under a
/// per-connection write mutex: the engine's dispatcher delivers batch
/// responses from its own thread while up-front rejections arrive inline
/// from the reader, so writes must serialize. A connection's responses
/// arrive in its request order except for those rejections (which carry
/// "code":"backpressure"/"shutting_down" and the echoed request id).
///
/// Sessions are NOT connection-bound: a client may disconnect and resume
/// its session id over a new connection; abandoned sessions fall to the
/// engine's idle-timeout eviction. Connection teardown therefore closes
/// only the transport, never engine state.

#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace hssta::serve {

class Engine;

class SocketServer {
 public:
  /// Bind + listen on `path` (an existing socket file is replaced) and
  /// start accepting. Throws hssta::Error when the socket can't be set up.
  SocketServer(Engine& engine, std::string path);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Stop accepting, wake every connection reader, join all threads and
  /// remove the socket file. Call after the engine has stopped (drained) —
  /// every accepted request then already has its response written.
  void stop();

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  /// Shared by a connection's reader thread and the engine callbacks that
  /// outlive it; writes serialize on `mu`.
  struct Conn {
    int fd = -1;
    std::mutex mu;
  };

  void accept_loop();
  void read_loop(const std::shared_ptr<Conn>& conn);
  static void write_line(const std::shared_ptr<Conn>& conn,
                         const std::string& line);

  Engine& engine_;
  std::string path_;
  int listen_fd_ = -1;
  std::thread acceptor_;

  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Conn>> conns_;
  std::vector<std::thread> readers_;
  bool stopping_ = false;
};

}  // namespace hssta::serve
