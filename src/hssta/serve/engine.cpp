#include "hssta/serve/engine.hpp"

#include <exception>
#include <future>
#include <sstream>
#include <utility>

#include "hssta/check/check.hpp"
#include "hssta/flow/chain.hpp"
#include "hssta/flow/report.hpp"
#include "hssta/util/error.hpp"
#include "hssta/util/timer.hpp"
#include "hssta/util/version.hpp"

namespace hssta::serve {

namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

Engine::Engine(EngineOptions opts)
    : opts_(std::move(opts)), queue_(opts_.queue_capacity) {
  // Designs and sessions always analyze serially inside their worker slot
  // (parallelism comes from batching requests across sessions, and serial
  // analysis is bit-identical anyway); the config's thread knob must not
  // spawn a pool per loaded design.
  opts_.config.threads = 1;
  exec_ = exec::make_executor(opts_.threads);
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

Engine::~Engine() {
  request_stop();
  if (dispatcher_.joinable()) dispatcher_.join();
}

void Engine::submit(std::string line, Done done) {
  n_requests_.fetch_add(1, kRelaxed);
  Pending p{std::move(line), std::move(done)};
  const exec::PushResult r = queue_.try_push(p);
  if (r == exec::PushResult::kOk) return;

  // Rejected up front: answer inline (possibly overtaking queued
  // responses — the echoed id lets pipelined clients match). Best-effort
  // id recovery: the line may be arbitrary garbage.
  std::optional<uint64_t> id;
  try {
    const util::JsonValue doc = util::JsonReader::parse(p.line);
    if (doc.is_object())
      if (const util::JsonValue* v = doc.find("id")) id = v->as_count("id");
  } catch (const std::exception&) {
  }
  n_error_.fetch_add(1, kRelaxed);
  if (r == exec::PushResult::kFull) {
    n_backpressure_.fetch_add(1, kRelaxed);
    p.done(error_response(id, kBackpressure,
                          "request queue is full (capacity " +
                              std::to_string(opts_.queue_capacity) +
                              "); retry later"));
  } else {
    n_rejected_shutdown_.fetch_add(1, kRelaxed);
    p.done(error_response(id, kShuttingDown, "server is shutting down"));
  }
}

std::string Engine::request(const std::string& line) {
  std::promise<std::string> promise;
  std::future<std::string> future = promise.get_future();
  submit(line, [&promise](std::string response) {
    promise.set_value(std::move(response));
  });
  return future.get();
}

bool Engine::stopped() const {
  std::lock_guard<std::mutex> lock(stopped_mu_);
  return stopped_;
}

void Engine::wait_until_stopped() {
  std::unique_lock<std::mutex> lock(stopped_mu_);
  stopped_cv_.wait(lock, [&] { return stopped_; });
}

void Engine::request_stop() {
  stop_requested_.store(true, kRelaxed);
  queue_.close();
}

EngineStats Engine::stats_snapshot() const {
  EngineStats s;
  s.requests = n_requests_.load(kRelaxed);
  s.responses_ok = n_ok_.load(kRelaxed);
  s.responses_error = n_error_.load(kRelaxed);
  s.rejected_backpressure = n_backpressure_.load(kRelaxed);
  s.rejected_shutdown = n_rejected_shutdown_.load(kRelaxed);
  s.batches = n_batches_.load(kRelaxed);
  s.sessions_opened = n_opened_.load(kRelaxed);
  s.sessions_closed = n_closed_.load(kRelaxed);
  s.sessions_evicted = n_evicted_.load(kRelaxed);
  s.ecos = n_ecos_.load(kRelaxed);
  s.analyzes = n_analyzes_.load(kRelaxed);
  s.sweeps = n_sweeps_.load(kRelaxed);
  return s;
}

void Engine::dispatch_loop() {
  for (;;) {
    std::vector<Pending> batch = queue_.pop_batch(opts_.batch_max);
    if (batch.empty()) break;  // closed and drained
    evict_idle_sessions();
    run_batch(std::move(batch));
    n_batches_.fetch_add(1, kRelaxed);
  }
  {
    std::lock_guard<std::mutex> lock(stopped_mu_);
    stopped_ = true;
  }
  stopped_cv_.notify_all();
}

void Engine::run_batch(std::vector<Pending> batch) {
  std::vector<Work> works(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    works[i].pending = std::move(batch[i]);
    try {
      works[i].request = parse_request(works[i].pending.line);
      works[i].parsed = true;
    } catch (const std::exception& e) {
      n_error_.fetch_add(1, kRelaxed);
      works[i].response = error_response(std::nullopt, kBadRequest, e.what());
    }
  }

  // Group the batch: one group per addressed session (its requests run
  // sequentially, in arrival order — the per-session serialization
  // guarantee), everything else in one ordered control group.
  std::vector<std::vector<size_t>> groups(1);
  std::map<uint64_t, size_t> session_group;
  for (size_t i = 0; i < works.size(); ++i) {
    if (!works[i].parsed) continue;  // response already filled
    const Request& req = works[i].request;
    if (is_session_verb(req.verb)) {
      const auto [it, fresh] =
          session_group.try_emplace(req.session, groups.size());
      if (fresh) groups.emplace_back();
      groups[it->second].push_back(i);
    } else {
      groups[0].push_back(i);
    }
  }

  {
    exec::Executor::Exclusive lock(*exec_);
    exec_->parallel_for(groups.size(), [&](size_t g, exec::Workspace&) {
      for (const size_t i : groups[g]) {
        Work& w = works[i];
        try {
          w.response = handle(w.request);
        } catch (const std::exception& e) {
          n_error_.fetch_add(1, kRelaxed);
          w.response = error_response(w.request.id, kInternal, e.what());
        }
      }
    });
  }

  // Deliver in arrival order after the batch barrier, so every submitter
  // sees its responses in request order.
  for (Work& w : works) w.pending.done(std::move(w.response));
}

void Engine::evict_idle_sessions() {
  if (opts_.idle_timeout_seconds <= 0.0) return;
  const Clock::time_point now = Clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (seconds_between(it->second->last_used, now) >
        opts_.idle_timeout_seconds) {
      evicted_ids_.insert(it->first);
      it = sessions_.erase(it);
      n_evicted_.fetch_add(1, kRelaxed);
    } else {
      ++it;
    }
  }
}

std::string Engine::handle(const Request& req) {
  switch (req.verb) {
    case Verb::kLoadDesign:
      return handle_load_design(req);
    case Verb::kOpenSession:
      return handle_open_session(req);
    case Verb::kEco:
      return handle_eco(req);
    case Verb::kAnalyze:
      return handle_analyze(req);
    case Verb::kSweep:
      return handle_sweep(req);
    case Verb::kCheck:
      return handle_check(req);
    case Verb::kStats:
      return handle_stats(req);
    case Verb::kSaveSession:
      return handle_save_session(req);
    case Verb::kRestoreSession:
      return handle_restore_session(req);
    case Verb::kCloseSession:
      return handle_close_session(req);
    case Verb::kShutdown:
      break;
  }
  return handle_shutdown(req);
}

std::string Engine::handle_load_design(const Request& req) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (designs_.count(req.name)) {
      n_error_.fetch_add(1, kRelaxed);
      return error_response(req.id, kBadRequest,
                            "design '" + req.name + "' is already loaded");
    }
  }

  // Build + analyze outside the lock (expensive; the control group is
  // sequential, so no two loads race anyway). The warm base every session
  // will copy from is the design's incremental state, fully analyzed here.
  WallTimer timer;
  flow::Design design =
      flow::build_chain_design(req.name, req.files, opts_.config);

  // Lint before the expensive analysis: a design with error-level static
  // diagnostics is rejected up front with the full report, instead of the
  // defect surfacing as a deep exception (an opaque "internal" error)
  // inside analyze().
  const check::Report lint = design.check();
  if (lint.worst() == check::Severity::kError) {
    n_error_.fetch_add(1, kRelaxed);
    std::ostringstream os;
    util::JsonWriter w(os);
    begin_response(w, req.id, /*ok=*/false);
    w.key("code").value(kCheckFailed);
    w.key("error").value(
        "design '" + req.name + "' failed static checks (" +
        std::to_string(lint.count(check::Severity::kError)) + " error(s))");
    w.key("report");
    check::write_report(w, lint);
    w.end_object();
    return os.str();
  }

  (void)design.analyze();
  (void)design.analyze_incremental();
  const double seconds = timer.seconds();

  auto loaded = std::make_unique<Loaded>(std::move(design));
  const flow::Design& d = loaded->design;
  std::ostringstream os;
  util::JsonWriter w(os);
  begin_response(w, req.id, /*ok=*/true);
  w.key("design").value(req.name);
  w.key("instances").value(d.num_instances());
  w.key("delay");
  flow::delay_json(w, d.delay());
  w.key("seconds").value(seconds);
  w.end_object();

  {
    std::lock_guard<std::mutex> lock(mu_);
    designs_.emplace(req.name, std::move(loaded));
  }
  n_ok_.fetch_add(1, kRelaxed);
  return os.str();
}

std::string Engine::handle_open_session(const Request& req) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = designs_.find(req.design);
    if (it == designs_.end()) {
      n_error_.fetch_add(1, kRelaxed);
      return error_response(req.id, kUnknownDesign,
                            "no design named '" + req.design + "' is loaded");
    }
    if (sessions_.size() >= opts_.max_sessions) {
      n_error_.fetch_add(1, kRelaxed);
      return error_response(
          req.id, kSaturated,
          "session limit reached (" + std::to_string(opts_.max_sessions) +
              " open); close a session first");
    }
    const uint64_t id = next_session_++;
    // Copy the analyzed warm base: the clean prefix (stitched graph,
    // provenance, design PCA, arrivals) shares by copy — nothing
    // recomputes until the session's first change.
    session = std::make_shared<Session>(id, req.design,
                                        it->second->design.incremental());
    session->state.set_executor(std::make_shared<exec::SerialExecutor>());
    session->last_used = Clock::now();
    sessions_.emplace(id, session);
  }
  n_opened_.fetch_add(1, kRelaxed);

  std::ostringstream os;
  util::JsonWriter w(os);
  begin_response(w, req.id, /*ok=*/true);
  w.key("session").value(session->id);
  w.key("design").value(session->design);
  w.key("delay");
  flow::delay_json(w, session->state.delay());
  w.end_object();
  n_ok_.fetch_add(1, kRelaxed);
  return os.str();
}

std::shared_ptr<Engine::Session> Engine::find_session(uint64_t id,
                                                      std::string& error,
                                                      const char*& code) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(id);
  if (it != sessions_.end()) return it->second;
  code = kUnknownSession;
  if (evicted_ids_.count(id))
    error = "session " + std::to_string(id) +
            " was evicted after idle timeout (" +
            std::to_string(opts_.idle_timeout_seconds) + "s); open a new one";
  else if (id == 0 || id >= next_session_)
    error = "unknown session " + std::to_string(id);
  else
    error = "session " + std::to_string(id) + " is closed";
  return nullptr;
}

std::string Engine::handle_eco(const Request& req) {
  std::string error;
  const char* code = kInternal;
  const std::shared_ptr<Session> session =
      find_session(req.session, error, code);
  if (!session) {
    n_error_.fetch_add(1, kRelaxed);
    return error_response(req.id, code, error);
  }
  session->last_used = Clock::now();
  try {
    // Resolve every change before applying any, so a bad spec (missing
    // variant file, ...) leaves the session untouched.
    std::vector<incr::Change> changes;
    changes.reserve(req.changes.size());
    for (const ChangeSpec& spec : req.changes)
      changes.push_back(resolve_change(spec, opts_.config));
    for (const incr::Change& c : changes)
      incr::apply_change(session->state, c);
  } catch (const std::exception& e) {
    n_error_.fetch_add(1, kRelaxed);
    return error_response(req.id, kInvalidChange, e.what());
  }
  session->ecos += req.changes.size();
  n_ecos_.fetch_add(1, kRelaxed);

  std::ostringstream os;
  util::JsonWriter w(os);
  begin_response(w, req.id, /*ok=*/true);
  w.key("session").value(session->id);
  w.key("recorded").value(req.changes.size());
  w.key("pending").value(session->state.pending());
  w.end_object();
  n_ok_.fetch_add(1, kRelaxed);
  return os.str();
}

std::string Engine::handle_analyze(const Request& req) {
  std::string error;
  const char* code = kInternal;
  const std::shared_ptr<Session> session =
      find_session(req.session, error, code);
  if (!session) {
    n_error_.fetch_add(1, kRelaxed);
    return error_response(req.id, code, error);
  }
  session->last_used = Clock::now();
  WallTimer timer;
  try {
    std::vector<incr::Change> changes;
    changes.reserve(req.changes.size());
    for (const ChangeSpec& spec : req.changes)
      changes.push_back(resolve_change(spec, opts_.config));
    for (const incr::Change& c : changes)
      incr::apply_change(session->state, c);
    session->state.analyze();
  } catch (const std::exception& e) {
    // analyze() leaves derived state untouched on validation failure —
    // the session survives an invalid what-if.
    n_error_.fetch_add(1, kRelaxed);
    return error_response(req.id, kInvalidChange, e.what());
  }
  session->ecos += req.changes.size();
  n_analyzes_.fetch_add(1, kRelaxed);

  std::ostringstream os;
  util::JsonWriter w(os);
  begin_response(w, req.id, /*ok=*/true);
  w.key("session").value(session->id);
  w.key("delay");
  flow::delay_json(w, session->state.delay());
  w.key("stats");
  flow::incr_stats_json(w, session->state.stats());
  w.key("seconds").value(timer.seconds());
  w.end_object();
  n_ok_.fetch_add(1, kRelaxed);
  return os.str();
}

std::string Engine::handle_sweep(const Request& req) {
  std::string error;
  const char* code = kInternal;
  const std::shared_ptr<Session> session =
      find_session(req.session, error, code);
  if (!session) {
    n_error_.fetch_add(1, kRelaxed);
    return error_response(req.id, code, error);
  }
  session->last_used = Clock::now();
  WallTimer timer;
  std::vector<incr::ScenarioResult> results;
  try {
    std::vector<incr::Scenario> scenarios;
    scenarios.reserve(req.scenarios.size());
    for (const ScenarioSpec& spec : req.scenarios) {
      incr::Scenario sc;
      sc.label = spec.label;
      sc.changes.reserve(spec.changes.size());
      for (const ChangeSpec& c : spec.changes)
        sc.changes.push_back(resolve_change(c, opts_.config));
      scenarios.push_back(std::move(sc));
    }
    // The runner needs an analyzed base with nothing pending: flush any
    // recorded-but-unanalyzed ecos first (same state an `analyze` would
    // leave). Scenarios then branch off the session's current state.
    if (session->state.pending()) session->state.analyze();
    const incr::ScenarioRunner runner(session->state);
    results = runner.run(scenarios);
  } catch (const std::exception& e) {
    n_error_.fetch_add(1, kRelaxed);
    return error_response(req.id, kInvalidChange, e.what());
  }
  n_sweeps_.fetch_add(1, kRelaxed);

  std::ostringstream os;
  util::JsonWriter w(os);
  begin_response(w, req.id, /*ok=*/true);
  w.key("session").value(session->id);
  w.key("seconds").value(timer.seconds());
  w.key("scenarios").begin_array();
  for (const incr::ScenarioResult& r : results) flow::scenario_json(w, r);
  w.end_array();
  w.end_object();
  n_ok_.fetch_add(1, kRelaxed);
  return os.str();
}

std::string Engine::handle_check(const Request& req) {
  const Loaded* loaded = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = designs_.find(req.design);
    if (it == designs_.end()) {
      n_error_.fetch_add(1, kRelaxed);
      return error_response(req.id, kUnknownDesign,
                            "no design named '" + req.design + "' is loaded");
    }
    loaded = it->second.get();
  }
  // Loaded designs are immutable after load and check() is read-only, so
  // running outside the lock is safe (and keeps slow lints off the map).
  const check::Report report = loaded->design.check();

  std::ostringstream os;
  util::JsonWriter w(os);
  begin_response(w, req.id, /*ok=*/true);
  w.key("design").value(req.design);
  w.key("report");
  check::write_report(w, report);
  w.end_object();
  n_ok_.fetch_add(1, kRelaxed);
  return os.str();
}

std::string Engine::handle_stats(const Request& req) {
  const EngineStats s = stats_snapshot();
  size_t designs, sessions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    designs = designs_.size();
    sessions = sessions_.size();
  }

  std::ostringstream os;
  util::JsonWriter w(os);
  begin_response(w, req.id, /*ok=*/true);
  w.key("version").value(kVersion);
  w.key("build").value(build_info());
  w.key("uptime_seconds").value(seconds_between(started_, Clock::now()));
  w.key("designs").value(designs);
  w.key("sessions").value(sessions);
  w.key("counters").begin_object();
  w.key("requests").value(s.requests);
  w.key("responses_ok").value(s.responses_ok);
  w.key("responses_error").value(s.responses_error);
  w.key("rejected_backpressure").value(s.rejected_backpressure);
  w.key("rejected_shutdown").value(s.rejected_shutdown);
  w.key("batches").value(s.batches);
  w.key("sessions_opened").value(s.sessions_opened);
  w.key("sessions_closed").value(s.sessions_closed);
  w.key("sessions_evicted").value(s.sessions_evicted);
  w.key("ecos").value(s.ecos);
  w.key("analyzes").value(s.analyzes);
  w.key("sweeps").value(s.sweeps);
  w.end_object();
  w.key("options").begin_object();
  w.key("threads").value(exec::effective_threads(opts_.threads));
  w.key("queue_capacity").value(opts_.queue_capacity);
  w.key("batch_max").value(opts_.batch_max);
  w.key("idle_timeout_seconds").value(opts_.idle_timeout_seconds);
  w.key("max_sessions").value(opts_.max_sessions);
  w.end_object();
  w.end_object();
  n_ok_.fetch_add(1, kRelaxed);
  return os.str();
}

std::string Engine::handle_save_session(const Request& req) {
  std::string error;
  const char* code = kInternal;
  const std::shared_ptr<Session> session =
      find_session(req.session, error, code);
  if (!session) {
    n_error_.fetch_add(1, kRelaxed);
    return error_response(req.id, code, error);
  }
  session->last_used = Clock::now();
  try {
    // Pending (recorded-but-unanalyzed) changes serialize with the state,
    // so a restore resumes exactly where the session left off.
    session->state.save_file(req.file);
  } catch (const std::exception& e) {
    n_error_.fetch_add(1, kRelaxed);
    return error_response(req.id, kBadRequest, e.what());
  }

  std::ostringstream os;
  util::JsonWriter w(os);
  begin_response(w, req.id, /*ok=*/true);
  w.key("session").value(session->id);
  w.key("file").value(req.file);
  w.key("pending").value(session->state.pending());
  w.end_object();
  n_ok_.fetch_add(1, kRelaxed);
  return os.str();
}

std::string Engine::handle_restore_session(const Request& req) {
  // A control verb (it creates a session rather than addressing one), so
  // it runs in the sequential control group; the expensive load + analyze
  // happens outside mu_ like load_design's build.
  std::optional<incr::DesignState> state;
  try {
    state.emplace(incr::DesignState::load_file(
        req.file, std::make_shared<exec::SerialExecutor>()));
    // Eager analyze: the restored session answers its first eco from warm
    // state, and the response can report the design delay like
    // open_session does. Bit-identical to the saved session's analyze()
    // by the serialization contract.
    (void)state->analyze();
  } catch (const std::exception& e) {
    n_error_.fetch_add(1, kRelaxed);
    return error_response(req.id, kBadRequest, e.what());
  }

  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (sessions_.size() >= opts_.max_sessions) {
      n_error_.fetch_add(1, kRelaxed);
      return error_response(
          req.id, kSaturated,
          "session limit reached (" + std::to_string(opts_.max_sessions) +
              " open); close a session first");
    }
    const uint64_t id = next_session_++;
    // Copy the name out first: make_shared's argument evaluation order is
    // unspecified, so `state->inputs().name` may read a moved-from state.
    std::string design = state->inputs().name;
    session = std::make_shared<Session>(id, std::move(design),
                                        std::move(*state));
    session->last_used = Clock::now();
    sessions_.emplace(id, session);
  }
  n_opened_.fetch_add(1, kRelaxed);

  std::ostringstream os;
  util::JsonWriter w(os);
  begin_response(w, req.id, /*ok=*/true);
  w.key("session").value(session->id);
  w.key("design").value(session->design);
  w.key("file").value(req.file);
  w.key("delay");
  flow::delay_json(w, session->state.delay());
  w.end_object();
  n_ok_.fetch_add(1, kRelaxed);
  return os.str();
}

std::string Engine::handle_close_session(const Request& req) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = sessions_.find(req.session);
    if (it != sessions_.end()) {
      sessions_.erase(it);
      n_closed_.fetch_add(1, kRelaxed);
      std::ostringstream os;
      util::JsonWriter w(os);
      begin_response(w, req.id, /*ok=*/true);
      w.key("session").value(req.session);
      w.key("closed").value(true);
      w.end_object();
      n_ok_.fetch_add(1, kRelaxed);
      return os.str();
    }
  }
  std::string error;
  const char* code = kInternal;
  (void)find_session(req.session, error, code);  // compose the message
  n_error_.fetch_add(1, kRelaxed);
  return error_response(req.id, code, error);
}

std::string Engine::handle_shutdown(const Request& req) {
  // Closing the queue rejects new requests ("shutting_down"); everything
  // already accepted — this batch included — still drains before the
  // dispatcher signals stopped().
  request_stop();
  std::ostringstream os;
  util::JsonWriter w(os);
  begin_response(w, req.id, /*ok=*/true);
  w.key("stopping").value(true);
  w.end_object();
  n_ok_.fetch_add(1, kRelaxed);
  return os.str();
}

}  // namespace hssta::serve
