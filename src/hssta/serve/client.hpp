/// \file client.hpp
/// serve::Client — a minimal line-oriented client for hssta_serve's
/// Unix-domain-socket transport. Used by `hssta_cli serve-client`, the
/// serve throughput benchmark and the end-to-end tests; kept in the
/// library so all three speak the wire protocol through one code path.

#pragma once

#include <string>

namespace hssta::serve {

class Client {
 public:
  /// Connect to a listening hssta_serve socket; throws hssta::Error when
  /// the connection can't be established.
  explicit Client(const std::string& socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Synchronous round trip: send one request line, block for the next
  /// response line. (With the protocol's in-order delivery this pairs
  /// request and response for non-pipelined use.)
  [[nodiscard]] std::string request(const std::string& line);

  /// Pipelining primitives: send a request without waiting / block for
  /// the next response line. recv() throws on EOF before a full line.
  void send(const std::string& line);
  [[nodiscard]] std::string recv();

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace hssta::serve
