/// \file protocol.hpp
/// The hssta_serve wire protocol: newline-delimited JSON request/response.
///
/// Every request is one JSON object on one line with a "verb" member;
/// every response is one JSON object on one line with an "ok" member (and
/// the request's "id" echoed back when it carried one). Response payloads
/// reuse the pinned flow/report schemas — a served delay block is byte-
/// identical to the --json block the one-shot CLI prints for the same
/// analysis.
///
/// Verbs:
///   {"verb":"load_design","name":"d","files":["m0.bench","m1.hstm"]}
///   {"verb":"open_session","design":"d"}
///   {"verb":"eco","session":1,"changes":[CHANGE...]}        record only
///   {"verb":"analyze","session":1[,"changes":[CHANGE...]]}  flush + delay
///   {"verb":"sweep","session":1,"scenarios":[{"label":"a",
///                                             "changes":[CHANGE...]}...]}
///   {"verb":"check","design":"d"}       static design lint (hssta::check)
///   {"verb":"stats"}
///   {"verb":"save_session","session":1,"file":"s.hsds"}
///   {"verb":"restore_session","file":"s.hsds"}       new session id
///   {"verb":"close_session","session":1}
///   {"verb":"shutdown"}
///
/// A CHANGE mirrors incr::Change:
///   {"op":"swap","inst":0,"file":"variant.bench|.hstm"}
///   {"op":"move","inst":1,"x":3.0,"y":0.0}
///   {"op":"rewire","conn":0,"from_inst":0,"from_port":1,
///                           "to_inst":1,"to_port":0}
///   {"op":"sigma","param":0,"scale":1.2}
///
/// Errors: {"id":..,"ok":false,"code":"...","error":"..."} with code one
/// of bad_request / unknown_design / unknown_session / saturated /
/// backpressure / shutting_down / invalid_change / check_failed /
/// internal. A check_failed response (load_design of a design with
/// error-level static diagnostics) additionally carries the full check
/// report under "report".

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "hssta/flow/config.hpp"
#include "hssta/incr/scenario.hpp"
#include "hssta/util/json.hpp"

namespace hssta::serve {

enum class Verb {
  kLoadDesign,
  kOpenSession,
  kEco,
  kAnalyze,
  kSweep,
  kCheck,
  kStats,
  kSaveSession,
  kRestoreSession,
  kCloseSession,
  kShutdown,
};

/// Error codes (the protocol's stable vocabulary).
inline constexpr const char* kBadRequest = "bad_request";
inline constexpr const char* kUnknownDesign = "unknown_design";
inline constexpr const char* kUnknownSession = "unknown_session";
inline constexpr const char* kSaturated = "saturated";
inline constexpr const char* kBackpressure = "backpressure";
inline constexpr const char* kShuttingDown = "shutting_down";
inline constexpr const char* kInvalidChange = "invalid_change";
inline constexpr const char* kCheckFailed = "check_failed";
inline constexpr const char* kInternal = "internal";

/// One change as it appears on the wire: model files are still paths (the
/// engine resolves them against its config + model cache at apply time).
struct ChangeSpec {
  enum class Op { kSwap, kMove, kRewire, kSigma };

  Op op = Op::kSigma;
  size_t inst = 0;      ///< swap / move
  std::string file;     ///< swap
  double x = 0.0;       ///< move
  double y = 0.0;       ///< move
  size_t conn = 0;      ///< rewire
  hier::PortRef from;   ///< rewire
  hier::PortRef to;     ///< rewire
  size_t param = 0;     ///< sigma
  double scale = 1.0;   ///< sigma
};

struct ScenarioSpec {
  std::string label;
  std::vector<ChangeSpec> changes;
};

/// One parsed request line.
struct Request {
  Verb verb = Verb::kStats;
  /// Echoed back in the response when present. Responses are delivered in
  /// per-connection request order (except up-front rejections, which may
  /// overtake queued work); ids let pipelined clients match regardless.
  std::optional<uint64_t> id;
  std::string name;                      ///< load_design
  std::vector<std::string> files;        ///< load_design
  std::string design;                    ///< open_session / check
  std::string file;                      ///< save_session / restore_session
  uint64_t session = 0;                  ///< session verbs
  std::vector<ChangeSpec> changes;       ///< eco / analyze
  std::vector<ScenarioSpec> scenarios;   ///< sweep
};

/// True for verbs that address an existing session — the engine
/// serializes these per session id.
[[nodiscard]] bool is_session_verb(Verb v);

/// Parse one request line; throws hssta::Error (the engine answers with a
/// bad_request response naming the problem).
[[nodiscard]] Request parse_request(const std::string& line);

/// Parse one CHANGE object (the {"op":...} schema above); throws
/// hssta::Error on malformed input. Exposed for the campaign spec parser,
/// whose expanded scenarios carry wire-schema changes.
[[nodiscard]] ChangeSpec parse_change_spec(const util::JsonValue& c);

/// Resolve a wire change into an engine change, loading a swap's model
/// file through the module pipeline (and the persistent model cache when
/// configured).
[[nodiscard]] incr::Change resolve_change(const ChangeSpec& spec,
                                          const flow::Config& cfg);

/// Open a response object and emit "id" (when present) and "ok"; the
/// caller appends payload members and closes the object.
void begin_response(util::JsonWriter& w, const std::optional<uint64_t>& id,
                    bool ok);

/// A complete error-response line (without trailing newline).
[[nodiscard]] std::string error_response(const std::optional<uint64_t>& id,
                                         const char* code,
                                         const std::string& message);

}  // namespace hssta::serve
