#!/usr/bin/env bash
# clang-format gate over src/ (and the other first-party C++ trees).
# Exits non-zero listing the offending files when formatting drifts from
# .clang-format. Usage: tools/format_check.sh [--fix]
set -euo pipefail
cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "format_check: $CLANG_FORMAT not found; skipping (install clang-format to enable the gate)" >&2
  exit 0
fi

mapfile -t files < <(find src tools tests bench examples \
  -name '*.cpp' -o -name '*.hpp' | sort)

if [[ "${1:-}" == "--fix" ]]; then
  "$CLANG_FORMAT" -i "${files[@]}"
  echo "format_check: reformatted ${#files[@]} files"
  exit 0
fi

bad=0
for f in "${files[@]}"; do
  if ! "$CLANG_FORMAT" --dry-run --Werror "$f" >/dev/null 2>&1; then
    echo "needs formatting: $f"
    bad=1
  fi
done
if [[ $bad -ne 0 ]]; then
  echo "format_check: run tools/format_check.sh --fix" >&2
  exit 1
fi
echo "format_check: ${#files[@]} files clean"
