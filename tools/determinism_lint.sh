#!/usr/bin/env bash
# Determinism lint over the first-party C++ trees.
#
# hssta's core contract is bit-identical results at any thread count, so
# the usual sources of run-to-run drift are banned at the grep level:
#
#   1. seeded-by-the-environment randomness: rand()/srand(),
#      std::random_device, and time(...)-based seeding. All randomness
#      must flow through stats::Rng with an explicit seed.
#   2. std::unordered_map / std::unordered_set in src/hssta: hash-order
#      iteration leaking into reports or graph construction is the classic
#      nondeterminism bug. Uses that provably cannot leak order carry an
#      inline `det-ok: <reason>` comment on or above the declaration.
#   3. `float` in timing math: the 32-bit type silently changes rounding
#      between builds and vectorization widths; all timing arithmetic is
#      double. (Comments are stripped before matching.)
#
# A finding is suppressed by putting `det-ok` (with a reason) on the same
# line. Usage: tools/determinism_lint.sh
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

report() {
  local title="$1" hits="$2"
  if [[ -n "$hits" ]]; then
    echo "determinism_lint: $title"
    echo "$hits" | sed 's/^/  /'
    fail=1
  fi
}

cpp_grep() {
  grep -rnE --include='*.cpp' --include='*.hpp' "$@" || true
}

# 1. Environment-seeded randomness anywhere in first-party code.
random_hits="$(cpp_grep \
  '\b(rand|srand)\s*\(|std::random_device|\btime\s*\(\s*(NULL|nullptr|0)\s*\)' \
  src tools tests bench | grep -v 'det-ok' || true)"
report "environment-seeded randomness (use stats::Rng with an explicit seed)" \
  "$random_hits"

# 2. Unordered containers in the library proper. Tools/tests may use them
#    freely; the library needs a det-ok justification per use.
unordered_hits="$(cpp_grep 'std::unordered_(map|set)<' src/hssta \
  | grep -v 'det-ok' || true)"
for match in $(echo "$unordered_hits" | cut -d: -f1-2 | tr -d ' '); do
  file="${match%%:*}"
  line="${match##*:}"
  # Accept a det-ok anywhere in the contiguous comment block above the
  # declaration.
  l=$((line - 1))
  while [[ $l -ge 1 ]]; do
    prev="$(sed -n "${l}p" "$file")"
    [[ "$prev" =~ ^[[:space:]]*// ]] || break
    if grep -q 'det-ok' <<<"$prev"; then
      unordered_hits="$(echo "$unordered_hits" \
        | grep -v "^$file:$line:" || true)"
      break
    fi
    l=$((l - 1))
  done
done
report "std::unordered_* in src/hssta without a det-ok justification" \
  "$unordered_hits"

# 3. `float` in the timing library (strip // comments first).
float_hits=""
while IFS= read -r f; do
  hits="$(sed 's|//.*||' "$f" \
    | grep -nE '(^|[^A-Za-z0-9_])float([^A-Za-z0-9_]|$)' \
    | grep -v 'det-ok' | sed "s|^|$f:|" || true)"
  [[ -n "$hits" ]] && float_hits="${float_hits:+$float_hits$'\n'}$hits"
done < <(find src/hssta -name '*.cpp' -o -name '*.hpp' | sort)
report "32-bit float in src/hssta (timing math is double)" "$float_hits"

if [[ $fail -ne 0 ]]; then
  echo "determinism_lint: FAILED"
  exit 1
fi
echo "determinism_lint: OK"
