// hssta_serve — long-running hierarchical-SSTA analysis service.
//
//   hssta_serve --socket /tmp/hssta.sock      Unix-domain-socket daemon
//   hssta_serve --stdio                       one-client stdio mode
//
// The server loads chain designs once (model extraction, stitching and
// the base analysis all happen at load_design time), then serves ECO
// what-if sessions against the warm state: each session is a private
// incremental engine clone, so an eco/analyze round trip re-propagates
// only the change's cone and returns numbers bit-identical to a one-shot
// `hssta_cli eco` of the same change. Protocol: newline-delimited JSON
// (see src/hssta/serve/protocol.hpp and docs/API.md); drive it with
// `hssta_cli serve-client` or any line-oriented socket client.
//
// The service stops on the `shutdown` verb (graceful: accepted requests
// drain first) or on stdin EOF in --stdio mode.

#include <csignal>
#include <cstdio>
#include <iostream>
#include <string>

#include "hssta/serve/engine.hpp"
#include "hssta/serve/socket.hpp"
#include "hssta/util/argparse.hpp"
#include "hssta/util/error.hpp"
#include "hssta/util/version.hpp"

namespace {

using namespace hssta;

int run(int argc, const char* const* argv) {
  std::string socket_path, config_file, cache_dir;
  bool stdio = false, version = false;
  serve::EngineOptions opts;
  uint64_t threads = 0, queue_cap = opts.queue_capacity;
  uint64_t batch_max = opts.batch_max, max_sessions = opts.max_sessions;
  double idle_timeout = opts.idle_timeout_seconds;

  util::ArgParser p("hssta_serve",
                    "long-running hierarchical-SSTA analysis service");
  p.option("--socket", &socket_path, "path",
           "Unix-domain socket to listen on");
  p.flag("--stdio", &stdio,
         "serve one client over stdin/stdout instead of a socket");
  p.option("--threads", &threads, "N",
           "request-batch worker threads, 0 = all hardware threads");
  p.option("--queue-cap", &queue_cap, "N",
           "admission-control queue capacity (default 256)");
  p.option("--batch-max", &batch_max, "N",
           "max requests dispatched per batch (default 32)");
  p.option("--idle-timeout", &idle_timeout, "SECONDS",
           "evict sessions idle longer than this, 0 = never (default 600)");
  p.option("--max-sessions", &max_sessions, "N",
           "max concurrently open sessions (default 256)");
  p.option("--config", &config_file, "file", "flow::Config key=value file");
  p.option("--cache-dir", &cache_dir, "dir",
           "persistent .hstm model cache directory");
  p.flag("--version", &version, "print version/build info and exit");
  if (!p.parse(argc, argv, 1)) return 0;

  if (version) {
    std::printf("%s\n", build_info().c_str());
    return 0;
  }
  HSSTA_REQUIRE(stdio == socket_path.empty(),
                "pick exactly one of --socket PATH or --stdio");

  opts.threads = threads;
  opts.queue_capacity = queue_cap;
  opts.batch_max = batch_max;
  opts.idle_timeout_seconds = idle_timeout;
  opts.max_sessions = max_sessions;
  if (!config_file.empty())
    opts.config = flow::Config::from_file(config_file);
  if (!cache_dir.empty()) {
    opts.config.cache.dir = cache_dir;
    opts.config.cache.enabled = true;
  }

  // A client vanishing mid-write must not kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);

  serve::Engine engine(std::move(opts));

  if (stdio) {
    std::string line;
    while (!engine.stopped() && std::getline(std::cin, line)) {
      // Skip blanks and #-comments so annotated transcripts (see
      // examples/serve_session.txt) pipe straight in.
      if (line.empty() || line[0] == '#') continue;
      std::printf("%s\n", engine.request(line).c_str());
      std::fflush(stdout);
    }
    engine.request_stop();
    engine.wait_until_stopped();
    return 0;
  }

  serve::SocketServer server(engine, socket_path);
  std::fprintf(stderr, "hssta_serve %s listening on %s\n", kVersion,
               server.path().c_str());
  engine.wait_until_stopped();
  server.stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
