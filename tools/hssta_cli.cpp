// hssta_cli — command-line front end for the flow:: pipeline API.
//
//   hssta_cli report  <in.bench|.blif>        module SSTA report
//   hssta_cli extract <in.bench|.blif> <out.hstm>  gray-box model extraction
//   hssta_cli mc      <in.bench|.blif>        module Monte Carlo
//   hssta_cli hier    <m1> <m2> [...]         design-level analysis of a
//                                             pipeline of modules; each <m>
//                                             is a netlist (.bench or
//                                             BLIF, detected by content;
//                                             model extracted on the fly)
//                                             or a pre-extracted .hstm
//                                             model
//   hssta_cli eco     <m1> <m2> [...]         one ECO (module swap, move,
//                                             rewire, sigma scaling) on the
//                                             chained design: full vs
//                                             incremental re-analysis
//   hssta_cli sweep   <m1> <m2> [...]         batched what-if scenarios
//                                             over the chained design via
//                                             the incremental engine
//   hssta_cli check   <m1> [...]              static design lint
//                                             (hssta::check): structural /
//                                             numeric / sequential /
//                                             hierarchy rules, no timing
//                                             run; exit code = worst
//                                             severity
//
// hier/eco/sweep accept --json for machine-readable output (schema pinned
// by tests/report_test.cpp). All commands accept --config <file>
// (flow::Config key=value text); the defaults are the paper's Section VI
// setup (90nm library, Leff/Tox/Vth, 0.92-neighbour correlation, < 100
// cells per grid, delta = 0.05). All commands also accept --threads N
// (0 = all hardware threads) to fan the compute layer out across an
// exec::ThreadPoolExecutor, and --cache-dir D to persist extracted .hstm
// models across runs (keyed by netlist/config fingerprint; a hit loads a
// byte-identical model, so neither knob changes any result bit —
// swapped-in ECO variants consult the same cache).

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "hssta/campaign/campaign.hpp"
#include "hssta/check/check.hpp"
#include "hssta/exec/executor.hpp"
#include "hssta/flow/chain.hpp"
#include "hssta/flow/detect.hpp"
#include "hssta/flow/flow.hpp"
#include "hssta/flow/report.hpp"
#include "hssta/frontend/blif.hpp"
#include "hssta/incr/design_state.hpp"
#include "hssta/incr/scenario.hpp"
#include "hssta/model/timing_model.hpp"
#include "hssta/netlist/bench_io.hpp"
#include "hssta/netlist/iscas.hpp"
#include "hssta/serve/client.hpp"
#include "hssta/timing/sta.hpp"
#include "hssta/util/argparse.hpp"
#include "hssta/util/error.hpp"
#include "hssta/util/json.hpp"
#include "hssta/util/strings.hpp"
#include "hssta/util/timer.hpp"
#include "hssta/util/version.hpp"

namespace {

using namespace hssta;

/// Flags shared by every subcommand.
struct Common {
  static constexpr uint64_t kThreadsUnset = UINT64_MAX;

  std::string config_file;
  std::string cache_dir;
  uint64_t threads = kThreadsUnset;

  void register_flags(util::ArgParser& p) {
    p.option("--config", &config_file, "file",
             "flow::Config key=value file");
    p.option("--threads", &threads, "N",
             "worker threads, 0 = all hardware threads (default: config)");
    p.option("--cache-dir", &cache_dir, "dir",
             "persistent .hstm model cache directory "
             "(default: config / HSSTA_CACHE_DIR)");
  }

  [[nodiscard]] flow::Config load() const {
    flow::Config cfg = config_file.empty()
                           ? flow::Config{}
                           : flow::Config::from_file(config_file);
    if (threads != kThreadsUnset) cfg.threads = threads;
    if (!cache_dir.empty()) {
      cfg.cache.dir = cache_dir;
      cfg.cache.enabled = true;
    }
    return cfg;
  }
};

void print_distribution(const char* label, const timing::CanonicalForm& d) {
  std::printf("%s: mean %.4f ns, sigma %.4f ns\n", label, d.nominal(),
              d.sigma());
  for (double q : {0.90, 0.99, 0.9987})
    std::printf("  %.2f%% quantile: %.4f ns\n", 100 * q, d.quantile(q));
}

int cmd_report(int argc, const char* const* argv) {
  Common common;
  uint64_t paths = 5;
  std::string in;
  util::ArgParser p("hssta_cli report", "module-level SSTA report");
  p.positional("in.bench|.blif", &in, "input netlist (.bench or BLIF, by content)");
  p.option("--paths", &paths, "K", "critical paths to report (default 5)");
  common.register_flags(p);
  if (!p.parse(argc, argv, 2)) return 0;

  const flow::Module m = flow::Module::from_file(in, common.load());
  std::printf("%s: %zu gates, %zu inputs, %zu outputs, depth %zu\n",
              m.name().c_str(), m.netlist().num_gates(),
              m.netlist().primary_inputs().size(),
              m.netlist().primary_outputs().size(), m.netlist().depth());
  std::printf("variation: %zu grids, %zu variables\n\n",
              m.variation().partition.num_grids(), m.variation().space->dim());

  print_distribution("delay", m.delay());
  std::printf("nominal STA %.4f ns, 3-sigma corner %.4f ns\n\n",
              timing::corner_delay(m.graph(), 0.0),
              timing::corner_delay(m.graph(), 3.0));

  const auto& top = m.critical_paths(paths);
  std::printf("top %zu critical paths:\n", top.size());
  for (const auto& path : top)
    std::printf("  P=%5.1f%%  %.4f ns (+/- %.4f)  %s\n",
                100.0 * path.criticality, path.delay.nominal(),
                path.delay.sigma(), path.format(m.graph()).c_str());
  return 0;
}

int cmd_extract(int argc, const char* const* argv) {
  Common common;
  double delta = -1.0;
  std::string in, out;
  util::ArgParser p("hssta_cli extract", "gray-box timing model extraction");
  p.positional("in.bench|.blif", &in, "input netlist (.bench or BLIF, by content)");
  p.positional("out.hstm", &out, "output model file");
  p.option("--delta", &delta, "X",
           "criticality threshold (default: config, 0.05)");
  common.register_flags(p);
  if (!p.parse(argc, argv, 2)) return 0;

  flow::Config cfg = common.load();
  if (delta >= 0.0) cfg.extract.criticality_threshold = delta;
  const flow::Module m = flow::Module::from_file(in, cfg);
  const model::Extraction& ex = m.extract_model();
  ex.model.save_file(out);
  if (ex.stats.from_cache)
    std::printf("%s: %zu vertices, %zu edges (model cache hit, %.3f s)\n"
                "model written to %s\n",
                m.name().c_str(), ex.stats.model_vertices,
                ex.stats.model_edges, ex.stats.seconds, out.c_str());
  else
    std::printf(
        "%s: %zu -> %zu edges (%.0f%%), %zu -> %zu vertices (%.0f%%), "
        "%.3f s\nmodel written to %s\n",
        m.name().c_str(), ex.stats.original_edges, ex.stats.model_edges,
        100.0 * ex.stats.edge_ratio(), ex.stats.original_vertices,
        ex.stats.model_vertices, 100.0 * ex.stats.vertex_ratio(),
        ex.stats.seconds, out.c_str());
  return 0;
}

int cmd_mc(int argc, const char* const* argv) {
  Common common;
  uint64_t samples = 0, seed = 0;
  std::string in;
  util::ArgParser p("hssta_cli mc", "module Monte Carlo reference");
  p.positional("in.bench|.blif", &in, "input netlist (.bench or BLIF, by content)");
  p.option("--samples", &samples, "N", "sample count (default: config)");
  p.option("--seed", &seed, "S", "RNG seed (default: config)");
  common.register_flags(p);
  if (!p.parse(argc, argv, 2)) return 0;

  flow::Config cfg = common.load();
  if (samples) cfg.mc.samples = samples;
  if (seed) cfg.mc.seed = seed;
  const flow::Module m = flow::Module::from_file(in, cfg);
  WallTimer timer;
  const stats::EmpiricalDistribution& d = m.monte_carlo();
  std::printf(
      "%s Monte Carlo (%zu samples, seed %llu, %.2f s):\n"
      "  mean %.4f ns, sigma %.4f ns, min %.4f, max %.4f\n"
      "  quantiles: 90%% %.4f | 99%% %.4f | 99.87%% %.4f\n",
      m.name().c_str(), cfg.mc.samples,
      static_cast<unsigned long long>(cfg.mc.seed), timer.seconds(), d.mean(),
      d.stddev(), d.min(), d.max(), d.quantile(0.90), d.quantile(0.99),
      d.quantile(0.9987));
  return 0;
}

/// Chain assembly lives in flow/chain.hpp (shared with the serve layer so
/// a served design is built by exactly this code); the CLI wrapper only
/// adds the per-instance progress printing.
flow::Design build_chain(const std::vector<std::string>& files,
                         const flow::Config& cfg, bool verbose,
                         const flow::ChainOverrides& overrides = {}) {
  flow::Design design =
      flow::build_chain_design("chain", files, cfg, overrides);
  if (verbose)
    for (size_t i = 0; i < design.num_instances(); ++i)
      std::printf("instance %zu '%s': %s (%zu in, %zu out, die %.1f x %.1f "
                  "um)\n",
                  i, design.instance_name(i).c_str(), files[i].c_str(),
                  design.num_inputs(i), design.num_outputs(i),
                  design.instance_model(i).die().width,
                  design.instance_model(i).die().height);
  return design;
}

int cmd_hier(int argc, const char* const* argv) {
  Common common;
  bool run_mc = false;
  bool global_only = false;
  bool json = false;
  uint64_t samples = 0, seed = 0;
  std::vector<std::string> files;
  util::ArgParser p("hssta_cli hier",
                    "design-level hierarchical SSTA of chained modules");
  p.positional_rest("module.bench|.blif|.hstm", &files,
                    "module netlists or model files (>= 2)", 2);
  p.flag("--mc", &run_mc,
         "cross-check with flattened Monte Carlo (.bench modules only)");
  p.flag("--global-only", &global_only,
         "baseline correlation mode instead of variable replacement");
  p.flag("--json", &json, "machine-readable JSON report on stdout");
  p.option("--samples", &samples, "N", "MC sample count (default: config)");
  p.option("--seed", &seed, "S", "MC RNG seed (default: config)");
  common.register_flags(p);
  if (!p.parse(argc, argv, 2)) return 0;

  flow::Config cfg = common.load();
  if (samples) cfg.mc.samples = samples;
  if (seed) cfg.mc.seed = seed;
  if (global_only) cfg.hier.mode = hier::CorrelationMode::kGlobalOnly;

  const flow::Design design = build_chain(files, cfg, /*verbose=*/!json);
  const hier::HierResult& r = design.analyze();
  if (json) {
    std::printf("%s\n", flow::hier_report_json(design, r).c_str());
    return 0;
  }
  std::printf("\ndesign: %zu instances, %zu top-level nets, %s correlation, "
              "%zu thread%s (built %.3f s, analyzed %.3f s)\n",
              design.num_instances(), design.hier().connections().size(),
              global_only ? "global-only" : "replacement",
              exec::effective_threads(cfg.threads),
              exec::effective_threads(cfg.threads) == 1 ? "" : "s",
              r.build_seconds, r.analysis_seconds);
  if (cfg.cache.active()) {
    const cache::CacheStats cs = design.cache_stats();
    std::printf("model cache: %llu hit%s, %llu miss%s, %llu store%s, "
                "%llu evicted (%s)\n",
                static_cast<unsigned long long>(cs.hits),
                cs.hits == 1 ? "" : "s",
                static_cast<unsigned long long>(cs.misses),
                cs.misses == 1 ? "" : "es",
                static_cast<unsigned long long>(cs.stores),
                cs.stores == 1 ? "" : "s",
                static_cast<unsigned long long>(cs.evictions),
                cfg.cache.dir.c_str());
  }
  print_distribution("stitched design delay", r.delay());

  if (run_mc && !design.can_monte_carlo()) {
    std::printf(
        "\nskipping Monte Carlo: an instance was loaded from a model file, "
        "so the design cannot be flattened (needs .bench modules)\n");
    run_mc = false;
  }
  if (run_mc) {
    WallTimer timer;
    const stats::EmpiricalDistribution& d = design.monte_carlo();
    std::printf(
        "\nflattened Monte Carlo (%zu samples, %.2f s): mean %.4f ns, "
        "sigma %.4f ns\n  SSTA vs MC: mean %+.2f%%, sigma %+.2f%%\n",
        cfg.mc.samples, timer.seconds(), d.mean(), d.stddev(),
        100.0 * (r.delay().nominal() / d.mean() - 1.0),
        100.0 * (r.delay().sigma() / d.stddev() - 1.0));
  }
  return 0;
}

/// Parse "I=rest" (e.g. --swap 1=variant.bench); returns {index, rest}.
std::pair<size_t, std::string> parse_indexed(const std::string& flag,
                                             const std::string& spec) {
  const size_t eq = spec.find('=');
  if (eq == std::string::npos)
    throw Error(flag + ": expected I=..., got: " + spec);
  const size_t idx = parse_count(flag + " index", spec.substr(0, eq));
  return {static_cast<size_t>(idx), spec.substr(eq + 1)};
}

/// Parse "FI.FP:TI.TP" into a connection.
hier::Connection parse_endpoints(const std::string& flag,
                                 const std::string& spec) {
  const auto halves = split(spec, ':');
  if (halves.size() != 2)
    throw Error(flag + ": expected FI.FP:TI.TP, got: " + spec);
  auto parse_ref = [&](const std::string& s) {
    const auto parts = split(s, '.');
    if (parts.size() != 2)
      throw Error(flag + ": expected INST.PORT, got: " + s);
    return hier::PortRef{
        static_cast<size_t>(parse_count(flag + " instance", parts[0])),
        static_cast<size_t>(parse_count(flag + " port", parts[1]))};
  };
  return hier::Connection{parse_ref(halves[0]), parse_ref(halves[1])};
}

/// eco: one engineering change order on the chained design, analyzed both
/// ways — a from-scratch rebuild and the incremental engine — with the
/// delays compared bit for bit and both wall times reported.
int cmd_eco(int argc, const char* const* argv) {
  Common common;
  bool json = false;
  std::string swap, move, rewire, sigma;
  std::vector<std::string> files;
  util::ArgParser p("hssta_cli eco",
                    "incremental ECO re-analysis of a chained design");
  p.positional_rest("module.bench|.blif|.hstm", &files,
                    "module netlists or model files (>= 2)", 2);
  p.option("--swap", &swap, "I=FILE",
           "swap instance I's model for FILE (.bench or .hstm)");
  p.option("--move", &move, "I=X,Y", "re-place instance I at (X, Y)");
  p.option("--rewire", &rewire, "C=FI.FP:TI.TP",
           "re-route chain connection C from output FP of instance FI to "
           "input TP of instance TI");
  p.option("--sigma", &sigma, "P=S",
           "scale parameter P's correlated sigma by S");
  p.flag("--json", &json, "machine-readable JSON report on stdout");
  common.register_flags(p);
  if (!p.parse(argc, argv, 2)) return 0;

  flow::Config cfg = common.load();
  if (swap.empty() && move.empty() && rewire.empty() && sigma.empty())
    throw Error("eco: need at least one of --swap/--move/--rewire/--sigma");

  // Parse the change into (a) incremental-engine changes and (b) the
  // overrides/config of the from-scratch reference build.
  std::vector<incr::Change> changes;
  flow::ChainOverrides overrides;
  flow::Config full_cfg = cfg;
  std::string desc;
  auto describe = [&](const std::string& what) {
    desc += (desc.empty() ? "" : "; ") + what;
  };
  if (!swap.empty()) {
    const auto [idx, file] = parse_indexed("--swap", swap);
    const auto variant = flow::load_variant_model(file, cfg);
    changes.push_back(incr::ReplaceModule{idx, variant});
    overrides.models[idx] = variant;
    describe("swap u" + std::to_string(idx) + " -> " + file);
  }
  if (!move.empty()) {
    const auto [idx, xy] = parse_indexed("--move", move);
    const auto parts = split(xy, ',');
    if (parts.size() != 2)
      throw Error("--move: expected I=X,Y, got: " + move);
    const double mx = parse_number("--move x", parts[0]);
    const double my = parse_number("--move y", parts[1]);
    changes.push_back(incr::MoveInstance{idx, mx, my});
    overrides.origins[idx] = placement::Point{mx, my};
    describe("move u" + std::to_string(idx) + " to (" + parts[0] + ", " +
             parts[1] + ")");
  }
  if (!rewire.empty()) {
    const auto [idx, spec] = parse_indexed("--rewire", rewire);
    const hier::Connection cn = parse_endpoints("--rewire", spec);
    changes.push_back(
        incr::RewireConnection{idx, cn.from_output, cn.to_input});
    overrides.rewires[idx] = cn;
    describe("rewire connection " + std::to_string(idx));
  }
  if (!sigma.empty()) {
    const auto [idx, s] = parse_indexed("--sigma", sigma);
    const double scale = parse_number("--sigma scale", s);
    if (idx >= cfg.parameters.size())
      throw Error("--sigma: parameter index out of range");
    changes.push_back(incr::SigmaScale{idx, scale});
    full_cfg.hier.param_sigma_scale.assign(cfg.parameters.size(), 1.0);
    full_cfg.hier.param_sigma_scale[idx] = scale;
    describe("scale sigma(" + cfg.parameters.at(idx).name + ") by " + s);
  }

  // Base design + incremental engine (models extract once, shared).
  const flow::Design base = build_chain(files, cfg, /*verbose=*/!json);
  incr::DesignState& st = base.incremental();

  // The scenario identity hashes the *base* design + change list, so it
  // must be taken before the changes are applied below.
  const uint64_t scenario_fp =
      incr::scenario_fingerprint(incr::state_fingerprint(st), changes);

  // From-scratch analysis of the changed design (timed: stitch +
  // propagate; model extraction is shared and excluded on both sides).
  const flow::Design changed =
      build_chain(files, full_cfg, /*verbose=*/false, overrides);
  const hier::HierResult& full = changed.analyze();

  // Incremental re-analysis of the same change.
  for (const incr::Change& c : changes) incr::apply_change(st, c);
  const timing::CanonicalForm& incr_delay = st.analyze();

  flow::EcoReport report;
  report.change = desc;
  report.fingerprint = scenario_fp;
  report.full_delay = full.delay();
  report.full_seconds = full.build_seconds + full.analysis_seconds;
  report.incremental_delay = incr_delay;
  report.incremental_seconds = st.stats().last_seconds;
  report.stats = st.stats();
  report.identical = incr_delay == full.delay();

  if (json) {
    std::printf("%s\n", flow::eco_report_json(base, report).c_str());
  } else {
    std::printf("\nECO: %s\n", desc.c_str());
    print_distribution("full re-analysis", report.full_delay);
    std::printf("  stitched + analyzed in %.4f s\n\n", report.full_seconds);
    print_distribution("incremental re-analysis", report.incremental_delay);
    std::printf(
        "  re-analyzed in %.4f s (%.1fx; %llu/%llu vertices recomputed, "
        "%llu instance%s restitched, %llu full rebuild%s)\n",
        report.incremental_seconds,
        report.incremental_seconds > 0.0
            ? report.full_seconds / report.incremental_seconds
            : 0.0,
        static_cast<unsigned long long>(report.stats.vertices_recomputed),
        static_cast<unsigned long long>(report.stats.vertices_live),
        static_cast<unsigned long long>(report.stats.instances_restitched),
        report.stats.instances_restitched == 1 ? "" : "s",
        static_cast<unsigned long long>(report.stats.full_builds - 1),
        report.stats.full_builds - 1 == 1 ? "" : "s");
    std::printf("results bit-identical: %s\n",
                report.identical ? "yes" : "NO");
  }
  return report.identical ? 0 : 1;
}

/// sweep: batched what-if scenarios over the chained design, fanned across
/// the executor by the incremental engine's ScenarioRunner.
int cmd_sweep(int argc, const char* const* argv) {
  Common common;
  bool json = false;
  std::string swap_each, move_each, sigma_each, rewire;
  std::vector<std::string> files;
  util::ArgParser p("hssta_cli sweep",
                    "batched what-if scenario sweep of a chained design");
  p.positional_rest("module.bench|.blif|.hstm", &files,
                    "module netlists or model files (>= 2)", 2);
  p.option("--swap-each", &swap_each, "FILE",
           "one scenario per instance: swap it for FILE's model");
  p.option("--move-each", &move_each, "DX,DY",
           "one scenario per instance: shift its origin by (DX, DY)");
  p.option("--sigma-each", &sigma_each, "S",
           "one scenario per process parameter: scale its sigma by S");
  p.option("--rewire", &rewire, "C=FI.FP:TI.TP",
           "one scenario re-routing chain connection C");
  p.flag("--json", &json, "machine-readable JSON report on stdout");
  common.register_flags(p);
  if (!p.parse(argc, argv, 2)) return 0;

  flow::Config cfg = common.load();
  if (swap_each.empty() && move_each.empty() && sigma_each.empty() &&
      rewire.empty())
    throw Error(
        "sweep: need at least one of --swap-each/--move-each/--sigma-each/"
        "--rewire");

  const flow::Design design = build_chain(files, cfg, /*verbose=*/!json);
  const incr::DesignState& st = design.incremental();

  std::vector<incr::Scenario> scenarios;
  if (!swap_each.empty()) {
    const auto variant = flow::load_variant_model(swap_each, cfg);
    for (size_t i = 0; i < design.num_instances(); ++i)
      scenarios.push_back({"swap " + design.instance_name(i),
                           {incr::ReplaceModule{i, variant}}});
  }
  if (!move_each.empty()) {
    const auto parts = split(move_each, ',');
    if (parts.size() != 2)
      throw Error("--move-each: expected DX,DY, got: " + move_each);
    const double dx = parse_number("--move-each dx", parts[0]);
    const double dy = parse_number("--move-each dy", parts[1]);
    for (size_t i = 0; i < design.num_instances(); ++i) {
      const placement::Point& o = st.inputs().instances[i].origin;
      scenarios.push_back({"move " + design.instance_name(i),
                           {incr::MoveInstance{i, o.x + dx, o.y + dy}}});
    }
  }
  if (!sigma_each.empty()) {
    const double s = parse_number("--sigma-each", sigma_each);
    for (size_t q = 0; q < cfg.parameters.size(); ++q)
      scenarios.push_back({"sigma " + cfg.parameters.at(q).name,
                           {incr::SigmaScale{q, s}}});
  }
  if (!rewire.empty()) {
    const auto [idx, spec] = parse_indexed("--rewire", rewire);
    const hier::Connection cn = parse_endpoints("--rewire", spec);
    scenarios.push_back(
        {"rewire " + std::to_string(idx),
         {incr::RewireConnection{idx, cn.from_output, cn.to_input}}});
  }

  WallTimer timer;
  const std::vector<incr::ScenarioResult> results =
      design.scenarios(scenarios);
  const double seconds = timer.seconds();

  if (json) {
    std::printf("%s\n", flow::sweep_report_json(design, results).c_str());
    return 0;
  }
  std::printf("\nbase design delay: mean %.4f ns, sigma %.4f ns\n",
              design.delay().nominal(), design.delay().sigma());
  std::printf("%zu scenario%s in %.3f s on %zu thread%s:\n",
              results.size(), results.size() == 1 ? "" : "s", seconds,
              exec::effective_threads(cfg.threads),
              exec::effective_threads(cfg.threads) == 1 ? "" : "s");
  for (const incr::ScenarioResult& r : results) {
    if (!r.ok()) {
      std::printf("  %-22s ERROR: %s\n", r.label.c_str(), r.error.c_str());
      continue;
    }
    std::printf(
        "  %-22s mean %8.4f  sigma %7.4f  q99 %8.4f  (%.4f s, %llu/%llu "
        "vertices)\n",
        r.label.c_str(), r.delay.nominal(), r.delay.sigma(),
        r.delay.quantile(0.99), r.seconds,
        static_cast<unsigned long long>(r.stats.vertices_recomputed),
        static_cast<unsigned long long>(r.stats.vertices_live));
  }
  return 0;
}

/// campaign: distributed, resumable scenario-exploration campaigns (see
/// campaign/campaign.hpp). `run` executes the pending scenarios (sharded
/// across worker subprocesses, or in-process with --workers 0) and merges
/// automatically once every shard exists; `status` scans the shard
/// directory; `merge` re-folds existing shards into the campaign report.
int cmd_campaign(int argc, const char* const* argv) {
  const std::string action = argc >= 3 ? argv[2] : "";
  if (action != "run" && action != "status" && action != "merge") {
    std::fprintf(stderr,
                 "usage: hssta_cli campaign run|status|merge <spec.json> "
                 "--out DIR [flags]\n");
    return 2;
  }

  Common common;
  std::string spec, out_dir, worker_cmd;
  uint64_t workers = 4, limit = 0;
  util::ArgParser p("hssta_cli campaign " + action,
                    "distributed scenario-exploration campaign");
  p.positional("spec.json", &spec, "campaign spec file");
  p.option("--out", &out_dir, "dir",
           "campaign output directory (shards + merged report)");
  if (action == "run") {
    p.option("--workers", &workers, "N",
             "worker processes (default 4; 0 = in-process reference run)");
    p.option("--limit", &limit, "K",
             "stop after K scenario executions this run (0 = no limit)");
    p.option("--worker-cmd", &worker_cmd, "path",
             "worker executable (default: this hssta_cli binary)");
  }
  common.register_flags(p);
  if (!p.parse(argc, argv, 3)) return 0;
  if (out_dir.empty()) throw Error("campaign: --out is required");

  campaign::CampaignOptions opts;
  opts.out_dir = out_dir;
  opts.workers = workers;
  opts.limit = limit;
  opts.worker_cmd = worker_cmd;
  opts.config = common.load();
  // Workers re-derive the same expansion, so they need the same config.
  if (!common.config_file.empty()) {
    opts.worker_args.push_back("--config");
    opts.worker_args.push_back(common.config_file);
  }
  if (!common.cache_dir.empty()) {
    opts.worker_args.push_back("--cache-dir");
    opts.worker_args.push_back(common.cache_dir);
  }

  if (action == "status") {
    const campaign::StatusReport r = campaign::campaign_status(spec, opts);
    std::printf("campaign '%s' (base %s): %zu/%zu scenarios done "
                "(%zu failed), %zu remaining\n",
                r.name.c_str(), r.base_fingerprint.c_str(), r.done, r.total,
                r.failed, r.total - r.done);
    return 0;
  }
  if (action == "merge") {
    std::printf("%s", campaign::merge_campaign(spec, opts).c_str());
    return 0;
  }

  const std::string name = campaign::parse_campaign_file(spec).name;
  const campaign::RunStats s = campaign::run_campaign(spec, opts);
  std::printf("campaign '%s': %zu scenarios, %zu skipped, %zu executed "
              "(%zu failed), %zu remaining\n",
              name.c_str(), s.total, s.skipped, s.executed, s.failed,
              s.remaining);
  if (s.redispatched > 0)
    std::printf("%zu scenario%s redispatched after worker loss\n",
                s.redispatched, s.redispatched == 1 ? "" : "s");
  if (s.remaining == 0) {
    (void)campaign::merge_campaign(spec, opts);
    std::printf("merged report: %s/campaign.json\n", out_dir.c_str());
  } else {
    std::printf("re-run to resume, or `campaign status` for progress\n");
  }
  return 0;
}

/// campaign-worker: the subprocess side of `campaign run` (newline-JSON
/// over stdio; see campaign/campaign.hpp for the protocol).
int cmd_campaign_worker(int argc, const char* const* argv) {
  Common common;
  std::string spec, out_dir;
  util::ArgParser p("hssta_cli campaign-worker",
                    "campaign worker subprocess (spawned by `campaign run`)");
  p.option("--spec", &spec, "file", "campaign spec file");
  p.option("--out", &out_dir, "dir", "campaign output directory");
  common.register_flags(p);
  if (!p.parse(argc, argv, 2)) return 0;
  if (spec.empty() || out_dir.empty())
    throw Error("campaign-worker: --spec and --out are required");

  campaign::CampaignOptions opts;
  opts.out_dir = out_dir;
  opts.config = common.load();
  return campaign::worker_loop(spec, opts, std::cin, std::cout);
}

/// serve-client: drive a running hssta_serve daemon over its Unix-domain
/// socket. Requests come from --script FILE (one JSON request per line;
/// blank lines and #-comments skipped) or stdin; every response line is
/// printed to stdout. With --check the exit status reflects the
/// responses: any "ok":false response (or an unparsable one) fails the
/// run — the CI smoke test's assertion hook.
int cmd_serve_client(int argc, const char* const* argv) {
  std::string socket_path, script;
  bool check = false;
  util::ArgParser p("hssta_cli serve-client",
                    "line-oriented client for a running hssta_serve daemon");
  p.positional("socket", &socket_path, "daemon's Unix-domain socket path");
  p.option("--script", &script, "file",
           "request lines to send (default: stdin)");
  p.flag("--check", &check,
         "exit non-zero when any response reports ok=false");
  if (!p.parse(argc, argv, 2)) return 0;

  std::ifstream file;
  if (!script.empty()) {
    file.open(script);
    if (!file) throw Error("cannot open script file: " + script);
  }
  std::istream& in = script.empty() ? std::cin : file;

  serve::Client client(socket_path);
  bool all_ok = true;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::string response = client.request(line);
    std::printf("%s\n", response.c_str());
    if (!check) continue;
    try {
      const util::JsonValue doc = util::JsonReader::parse(response);
      if (!doc.at("ok").as_bool()) all_ok = false;
    } catch (const std::exception&) {
      all_ok = false;
    }
  }
  return all_ok ? 0 : 1;
}

int cmd_check(int argc, const char* const* argv) {
  Common common;
  bool json = false;
  std::vector<std::string> files;
  util::ArgParser p("hssta_cli check",
                    "static design diagnostics (hssta::check, no timing "
                    "run); exit code is the worst severity found: 0 clean "
                    "or info, 1 warning, 2 error");
  p.positional_rest("module.bench|.blif|.hstm|iscas-name", &files,
                    "netlists (.bench/BLIF), model files or ISCAS85 circuit names (>= 1)",
                    1);
  p.flag("--json", &json, "machine-readable JSON report on stdout");
  common.register_flags(p);
  if (!p.parse(argc, argv, 2)) return 0;

  const flow::Config cfg = common.load();
  check::CheckOptions opts;
  opts.severity = cfg.check_severity;

  const auto is_iscas = [](const std::string& f) {
    for (const netlist::IscasProfile& pr : netlist::iscas85_profiles())
      if (pr.name == f) return true;
    return false;
  };

  check::Report merged;
  merged.subject = files.size() == 1 ? files[0] : "check";
  bool chainable = files.size() >= 2;

  const std::shared_ptr<const library::CellLibrary> lib =
      flow::frontend_library(cfg);
  for (const std::string& f : files) {
    if (is_iscas(f)) {
      chainable = false;  // the chain builder resolves file paths only
      const flow::Module m = flow::Module::from_iscas(f, cfg);
      check::merge(merged, check::run_checks(m.netlist(), opts));
      check::merge(merged, check::run_checks(m.graph(), m.name(), opts));
      continue;
    }
    const flow::FileFormat fmt = flow::detect_file_format(f);
    if (fmt == flow::FileFormat::kHstm) {
      const model::TimingModel m = model::TimingModel::load_file(f);
      check::merge(merged, check::run_checks(m, opts));
      continue;
    }
    // Netlists parse without the throwing structural validation — linting
    // malformed netlists is the point of this subcommand.
    netlist::Netlist nl = [&] {
      if (fmt == flow::FileFormat::kBlif) {
        frontend::BlifOptions bopts;
        bopts.validate = false;
        bopts.model = cfg.frontend.blif_model;
        return frontend::read_blif_file(f, *lib, bopts);
      }
      if (fmt == flow::FileFormat::kBench)
        return netlist::read_bench_file(f, *lib, /*validate=*/false);
      throw Error("cannot check " + f + ": content detected as " +
                  flow::format_name(fmt) +
                  "; supported inputs are ISCAS .bench, BLIF, .hstm models "
                  "and ISCAS85 circuit names");
    }();
    check::Report r = check::run_checks(nl, opts);
    // Gate graph building on the *default* severities: a config override
    // can downgrade how a structural defect is reported, but an unsound
    // netlist still cannot be levelized.
    const bool broken = check::run_checks(nl, check::CheckOptions{}).worst() ==
                        check::Severity::kError;
    check::merge(merged, std::move(r));
    if (broken) {
      chainable = false;  // placement/levelization need a sound netlist
      continue;
    }
    const flow::Module m = flow::Module::from_netlist(std::move(nl), cfg, lib);
    check::merge(merged, check::run_checks(m.graph(), m.name(), opts));
  }

  // With >= 2 sound module files, also lint the chained design itself
  // (stitch boundaries, variation agreement) — the same assembly hier/eco
  // analyze.
  if (chainable && merged.worst() != check::Severity::kError) {
    const flow::Design design = build_chain(files, cfg, /*verbose=*/false);
    check::Report r = design.check(opts);
    merged.instances_checked = r.instances_checked;
    check::merge(merged, std::move(r));
  }

  if (json) {
    std::printf("%s\n", check::report_json(merged).c_str());
  } else {
    std::fputs(merged.summary().c_str(), stdout);
    std::printf("%s: %zu error(s), %zu warning(s), %zu info(s)\n",
                merged.subject.c_str(),
                merged.count(check::Severity::kError),
                merged.count(check::Severity::kWarning),
                merged.count(check::Severity::kInfo));
  }
  return check::exit_code(merged);
}

int print_version() {
  std::printf("%s\n", build_info().c_str());
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  hssta_cli report  <in.bench|.blif> [flags]\n"
               "  hssta_cli extract <in.bench|.blif> <out.hstm> [flags]\n"
               "  hssta_cli mc      <in.bench|.blif> [flags]\n"
               "  hssta_cli hier    <m1.bench|.blif|.hstm> <m2...> [flags]\n"
               "  hssta_cli eco     <m1.bench|.blif|.hstm> <m2...> --swap I=FILE |"
               " --move I=X,Y | --rewire C=A.B:C.D | --sigma P=S\n"
               "  hssta_cli sweep   <m1.bench|.blif|.hstm> <m2...> --swap-each F |"
               " --move-each DX,DY | --sigma-each S | --rewire ...\n"
               "  hssta_cli campaign run|status|merge <spec.json> --out DIR "
               "[--workers N] [--limit K]\n"
               "  hssta_cli check   <m.bench|.blif|.hstm|iscas-name> [...] "
               "[--json]   static design lint\n"
               "  hssta_cli serve-client <socket> [--script FILE] [--check]\n"
               "  hssta_cli --version\n"
               "run a subcommand with --help for its flags\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) return usage();
    const std::string cmd = argv[1];
    if (cmd == "report") return cmd_report(argc, argv);
    if (cmd == "extract") return cmd_extract(argc, argv);
    if (cmd == "mc") return cmd_mc(argc, argv);
    if (cmd == "hier") return cmd_hier(argc, argv);
    if (cmd == "eco") return cmd_eco(argc, argv);
    if (cmd == "sweep") return cmd_sweep(argc, argv);
    if (cmd == "campaign") return cmd_campaign(argc, argv);
    if (cmd == "campaign-worker") return cmd_campaign_worker(argc, argv);
    if (cmd == "check") return cmd_check(argc, argv);
    if (cmd == "serve-client") return cmd_serve_client(argc, argv);
    if (cmd == "--version" || cmd == "version") return print_version();
    std::fprintf(stderr, "hssta_cli: unknown subcommand '%s'\n", cmd.c_str());
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
