// hssta_cli — command-line front end for the flow:: pipeline API.
//
//   hssta_cli report  <in.bench>              module SSTA report
//   hssta_cli extract <in.bench> <out.hstm>   gray-box model extraction
//   hssta_cli mc      <in.bench>              module Monte Carlo
//   hssta_cli hier    <m1> <m2> [...]         design-level analysis of a
//                                             pipeline of modules; each <m>
//                                             is a .bench netlist (model
//                                             extracted on the fly) or a
//                                             pre-extracted .hstm model
//
// All commands accept --config <file> (flow::Config key=value text); the
// defaults are the paper's Section VI setup (90nm library, Leff/Tox/Vth,
// 0.92-neighbour correlation, < 100 cells per grid, delta = 0.05). All
// commands also accept --threads N (0 = all hardware threads) to fan the
// compute layer out across an exec::ThreadPoolExecutor, and --cache-dir D
// to persist extracted .hstm models across runs (keyed by netlist/config
// fingerprint; a hit loads a byte-identical model, so neither knob changes
// any result bit).

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "hssta/exec/executor.hpp"
#include "hssta/flow/flow.hpp"
#include "hssta/model/timing_model.hpp"
#include "hssta/timing/sta.hpp"
#include "hssta/util/argparse.hpp"
#include "hssta/util/error.hpp"
#include "hssta/util/strings.hpp"
#include "hssta/util/timer.hpp"

namespace {

using namespace hssta;

/// Flags shared by every subcommand.
struct Common {
  static constexpr uint64_t kThreadsUnset = UINT64_MAX;

  std::string config_file;
  std::string cache_dir;
  uint64_t threads = kThreadsUnset;

  void register_flags(util::ArgParser& p) {
    p.option("--config", &config_file, "file",
             "flow::Config key=value file");
    p.option("--threads", &threads, "N",
             "worker threads, 0 = all hardware threads (default: config)");
    p.option("--cache-dir", &cache_dir, "dir",
             "persistent .hstm model cache directory "
             "(default: config / HSSTA_CACHE_DIR)");
  }

  [[nodiscard]] flow::Config load() const {
    flow::Config cfg = config_file.empty()
                           ? flow::Config{}
                           : flow::Config::from_file(config_file);
    if (threads != kThreadsUnset) cfg.threads = threads;
    if (!cache_dir.empty()) {
      cfg.cache.dir = cache_dir;
      cfg.cache.enabled = true;
    }
    return cfg;
  }
};

void print_distribution(const char* label, const timing::CanonicalForm& d) {
  std::printf("%s: mean %.4f ns, sigma %.4f ns\n", label, d.nominal(),
              d.sigma());
  for (double q : {0.90, 0.99, 0.9987})
    std::printf("  %.2f%% quantile: %.4f ns\n", 100 * q, d.quantile(q));
}

int cmd_report(int argc, const char* const* argv) {
  Common common;
  uint64_t paths = 5;
  std::string in;
  util::ArgParser p("hssta_cli report", "module-level SSTA report");
  p.positional("in.bench", &in, "input netlist");
  p.option("--paths", &paths, "K", "critical paths to report (default 5)");
  common.register_flags(p);
  if (!p.parse(argc, argv, 2)) return 0;

  const flow::Module m = flow::Module::from_bench_file(in, common.load());
  std::printf("%s: %zu gates, %zu inputs, %zu outputs, depth %zu\n",
              m.name().c_str(), m.netlist().num_gates(),
              m.netlist().primary_inputs().size(),
              m.netlist().primary_outputs().size(), m.netlist().depth());
  std::printf("variation: %zu grids, %zu variables\n\n",
              m.variation().partition.num_grids(), m.variation().space->dim());

  print_distribution("delay", m.delay());
  std::printf("nominal STA %.4f ns, 3-sigma corner %.4f ns\n\n",
              timing::corner_delay(m.graph(), 0.0),
              timing::corner_delay(m.graph(), 3.0));

  const auto& top = m.critical_paths(paths);
  std::printf("top %zu critical paths:\n", top.size());
  for (const auto& path : top)
    std::printf("  P=%5.1f%%  %.4f ns (+/- %.4f)  %s\n",
                100.0 * path.criticality, path.delay.nominal(),
                path.delay.sigma(), path.format(m.graph()).c_str());
  return 0;
}

int cmd_extract(int argc, const char* const* argv) {
  Common common;
  double delta = -1.0;
  std::string in, out;
  util::ArgParser p("hssta_cli extract", "gray-box timing model extraction");
  p.positional("in.bench", &in, "input netlist");
  p.positional("out.hstm", &out, "output model file");
  p.option("--delta", &delta, "X",
           "criticality threshold (default: config, 0.05)");
  common.register_flags(p);
  if (!p.parse(argc, argv, 2)) return 0;

  flow::Config cfg = common.load();
  if (delta >= 0.0) cfg.extract.criticality_threshold = delta;
  const flow::Module m = flow::Module::from_bench_file(in, cfg);
  const model::Extraction& ex = m.extract_model();
  ex.model.save_file(out);
  if (ex.stats.from_cache)
    std::printf("%s: %zu vertices, %zu edges (model cache hit, %.3f s)\n"
                "model written to %s\n",
                m.name().c_str(), ex.stats.model_vertices,
                ex.stats.model_edges, ex.stats.seconds, out.c_str());
  else
    std::printf(
        "%s: %zu -> %zu edges (%.0f%%), %zu -> %zu vertices (%.0f%%), "
        "%.3f s\nmodel written to %s\n",
        m.name().c_str(), ex.stats.original_edges, ex.stats.model_edges,
        100.0 * ex.stats.edge_ratio(), ex.stats.original_vertices,
        ex.stats.model_vertices, 100.0 * ex.stats.vertex_ratio(),
        ex.stats.seconds, out.c_str());
  return 0;
}

int cmd_mc(int argc, const char* const* argv) {
  Common common;
  uint64_t samples = 0, seed = 0;
  std::string in;
  util::ArgParser p("hssta_cli mc", "module Monte Carlo reference");
  p.positional("in.bench", &in, "input netlist");
  p.option("--samples", &samples, "N", "sample count (default: config)");
  p.option("--seed", &seed, "S", "RNG seed (default: config)");
  common.register_flags(p);
  if (!p.parse(argc, argv, 2)) return 0;

  flow::Config cfg = common.load();
  if (samples) cfg.mc.samples = samples;
  if (seed) cfg.mc.seed = seed;
  const flow::Module m = flow::Module::from_bench_file(in, cfg);
  WallTimer timer;
  const stats::EmpiricalDistribution& d = m.monte_carlo();
  std::printf(
      "%s Monte Carlo (%zu samples, seed %llu, %.2f s):\n"
      "  mean %.4f ns, sigma %.4f ns, min %.4f, max %.4f\n"
      "  quantiles: 90%% %.4f | 99%% %.4f | 99.87%% %.4f\n",
      m.name().c_str(), cfg.mc.samples,
      static_cast<unsigned long long>(cfg.mc.seed), timer.seconds(), d.mean(),
      d.stddev(), d.min(), d.max(), d.quantile(0.90), d.quantile(0.99),
      d.quantile(0.9987));
  return 0;
}

/// hier: load the modules, place them left-to-right in abutment and chain
/// every consecutive pair (output k of stage i feeds input k of stage i+1,
/// wrapping over the narrower port list). Unwired boundary ports become
/// design primary ports, then the full hierarchical analysis runs.
int cmd_hier(int argc, const char* const* argv) {
  Common common;
  bool run_mc = false;
  bool global_only = false;
  uint64_t samples = 0, seed = 0;
  std::vector<std::string> files;
  util::ArgParser p("hssta_cli hier",
                    "design-level hierarchical SSTA of chained modules");
  p.positional_rest("module.bench|.hstm", &files,
                    "module netlists or model files (>= 2)", 2);
  p.flag("--mc", &run_mc,
         "cross-check with flattened Monte Carlo (.bench modules only)");
  p.flag("--global-only", &global_only,
         "baseline correlation mode instead of variable replacement");
  p.option("--samples", &samples, "N", "MC sample count (default: config)");
  p.option("--seed", &seed, "S", "MC RNG seed (default: config)");
  common.register_flags(p);
  if (!p.parse(argc, argv, 2)) return 0;

  flow::Config cfg = common.load();
  if (samples) cfg.mc.samples = samples;
  if (seed) cfg.mc.seed = seed;
  if (global_only) cfg.hier.mode = hier::CorrelationMode::kGlobalOnly;

  flow::Design design("chain", cfg);
  double x = 0.0;
  for (const std::string& file : files) {
    size_t idx;
    if (file.size() > 5 && file.substr(file.size() - 5) == ".hstm")
      idx = design.add_instance_from_model_file(file, x, 0.0);
    else
      idx = design.add_instance(flow::Module::from_bench_file(file, cfg), x,
                                0.0);
    x += design.instance_model(idx).die().width;
    std::printf("instance %zu '%s': %s (%zu in, %zu out, die %.1f x %.1f "
                "um)\n",
                idx, design.instance_name(idx).c_str(), file.c_str(),
                design.num_inputs(idx), design.num_outputs(idx),
                design.instance_model(idx).die().width,
                design.instance_model(idx).die().height);
  }

  for (size_t i = 0; i + 1 < design.num_instances(); ++i) {
    const size_t no = design.num_outputs(i);
    const size_t ni = design.num_inputs(i + 1);
    if (no == 0)
      throw Error("cannot chain: module '" + design.instance_name(i) +
                  "' has no outputs");
    for (size_t k = 0; k < ni; ++k) design.connect(i, k % no, i + 1, k);
  }
  design.expose_unconnected_ports();

  const hier::HierResult& r = design.analyze();
  std::printf("\ndesign: %zu instances, %zu top-level nets, %s correlation, "
              "%zu thread%s (built %.3f s, analyzed %.3f s)\n",
              design.num_instances(), design.hier().connections().size(),
              global_only ? "global-only" : "replacement",
              exec::effective_threads(cfg.threads),
              exec::effective_threads(cfg.threads) == 1 ? "" : "s",
              r.build_seconds, r.analysis_seconds);
  if (cfg.cache.active()) {
    const cache::CacheStats cs = design.cache_stats();
    std::printf("model cache: %llu hit%s, %llu miss%s, %llu store%s, "
                "%llu evicted (%s)\n",
                static_cast<unsigned long long>(cs.hits),
                cs.hits == 1 ? "" : "s",
                static_cast<unsigned long long>(cs.misses),
                cs.misses == 1 ? "" : "es",
                static_cast<unsigned long long>(cs.stores),
                cs.stores == 1 ? "" : "s",
                static_cast<unsigned long long>(cs.evictions),
                cfg.cache.dir.c_str());
  }
  print_distribution("stitched design delay", r.delay());

  if (run_mc && !design.can_monte_carlo()) {
    std::printf(
        "\nskipping Monte Carlo: an instance was loaded from a model file, "
        "so the design cannot be flattened (needs .bench modules)\n");
    run_mc = false;
  }
  if (run_mc) {
    WallTimer timer;
    const stats::EmpiricalDistribution& d = design.monte_carlo();
    std::printf(
        "\nflattened Monte Carlo (%zu samples, %.2f s): mean %.4f ns, "
        "sigma %.4f ns\n  SSTA vs MC: mean %+.2f%%, sigma %+.2f%%\n",
        cfg.mc.samples, timer.seconds(), d.mean(), d.stddev(),
        100.0 * (r.delay().nominal() / d.mean() - 1.0),
        100.0 * (r.delay().sigma() / d.stddev() - 1.0));
  }
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  hssta_cli report  <in.bench> [flags]\n"
               "  hssta_cli extract <in.bench> <out.hstm> [flags]\n"
               "  hssta_cli mc      <in.bench> [flags]\n"
               "  hssta_cli hier    <m1.bench|.hstm> <m2...> [flags]\n"
               "run a subcommand with --help for its flags\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) return usage();
    const std::string cmd = argv[1];
    if (cmd == "report") return cmd_report(argc, argv);
    if (cmd == "extract") return cmd_extract(argc, argv);
    if (cmd == "mc") return cmd_mc(argc, argv);
    if (cmd == "hier") return cmd_hier(argc, argv);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
