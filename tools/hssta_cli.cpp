// hssta_cli — command-line front end for .bench workflows.
//
//   hssta_cli report  <in.bench> [--paths K]      module SSTA report
//   hssta_cli extract <in.bench> <out.hstm> [--delta X]
//   hssta_cli mc      <in.bench> [--samples N] [--seed S]
//
// All commands use the default 90nm library and the paper's variation
// setup (Leff/Tox/Vth, 0.92-neighbour correlation, <100 cells per grid).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "hssta/core/paths.hpp"
#include "hssta/core/ssta.hpp"
#include "hssta/hssta.hpp"

namespace {

using namespace hssta;

struct Flags {
  size_t paths = 5;
  size_t samples = 5000;
  uint64_t seed = 2009;
  double delta = 0.05;
};

Flags parse_flags(int argc, char** argv, int first) {
  Flags f;
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) throw Error("missing value after " + a);
      return argv[++i];
    };
    if (a == "--paths") f.paths = std::strtoull(next(), nullptr, 10);
    else if (a == "--samples") f.samples = std::strtoull(next(), nullptr, 10);
    else if (a == "--seed") f.seed = std::strtoull(next(), nullptr, 10);
    else if (a == "--delta") f.delta = std::strtod(next(), nullptr);
    else throw Error("unknown flag: " + a);
  }
  return f;
}

struct Loaded {
  netlist::Netlist netlist;
  placement::Placement placement;
  variation::ModuleVariation variation;
  timing::BuiltGraph built;
};

Loaded load(const std::string& path, const library::CellLibrary& lib) {
  netlist::Netlist nl = netlist::read_bench_file(path, lib);
  placement::Placement pl = placement::place_rows(nl);
  variation::ModuleVariation mv = variation::make_module_variation(
      pl, nl.num_gates(), variation::default_90nm_parameters(),
      variation::SpatialCorrelationConfig{});
  timing::BuiltGraph built = timing::build_timing_graph(nl, pl, mv);
  return Loaded{std::move(nl), std::move(pl), std::move(mv),
                std::move(built)};
}

int cmd_report(const std::string& path, const Flags& flags,
               const library::CellLibrary& lib) {
  const Loaded m = load(path, lib);
  std::printf("%s: %zu gates, %zu inputs, %zu outputs, depth %zu\n",
              m.netlist.name().c_str(), m.netlist.num_gates(),
              m.netlist.primary_inputs().size(),
              m.netlist.primary_outputs().size(), m.netlist.depth());
  std::printf("variation: %zu grids, %zu variables\n\n",
              m.variation.partition.num_grids(), m.variation.space->dim());

  const core::SstaResult ssta = core::run_ssta(m.built.graph);
  std::printf("delay: mean %.4f ns, sigma %.4f ns\n", ssta.delay.nominal(),
              ssta.delay.sigma());
  for (double q : {0.90, 0.99, 0.9987})
    std::printf("  %.2f%% quantile: %.4f ns\n", 100 * q,
                ssta.delay.quantile(q));
  std::printf("nominal STA %.4f ns, 3-sigma corner %.4f ns\n\n",
              timing::corner_delay(m.built.graph, 0.0),
              timing::corner_delay(m.built.graph, 3.0));

  const auto paths = core::report_critical_paths(m.built.graph, flags.paths);
  std::printf("top %zu critical paths:\n", paths.size());
  for (const auto& p : paths)
    std::printf("  P=%5.1f%%  %.4f ns (+/- %.4f)  %s\n",
                100.0 * p.criticality, p.delay.nominal(), p.delay.sigma(),
                p.format(m.built.graph).c_str());
  return 0;
}

int cmd_extract(const std::string& in, const std::string& out,
                const Flags& flags, const library::CellLibrary& lib) {
  const Loaded m = load(in, lib);
  const model::Extraction ex = model::extract_timing_model(
      m.built, m.variation, m.netlist.name(),
      model::compute_boundary(m.netlist),
      model::ExtractOptions{flags.delta, true});
  ex.model.save_file(out);
  std::printf(
      "%s: %zu -> %zu edges (%.0f%%), %zu -> %zu vertices (%.0f%%), "
      "%.3f s\nmodel written to %s\n",
      m.netlist.name().c_str(), ex.stats.original_edges,
      ex.stats.model_edges, 100.0 * ex.stats.edge_ratio(),
      ex.stats.original_vertices, ex.stats.model_vertices,
      100.0 * ex.stats.vertex_ratio(), ex.stats.seconds, out.c_str());
  return 0;
}

int cmd_mc(const std::string& path, const Flags& flags,
           const library::CellLibrary& lib) {
  const Loaded m = load(path, lib);
  const mc::FlatCircuit fc =
      mc::FlatCircuit::from_module(m.built, m.netlist, m.variation);
  stats::Rng rng(flags.seed);
  WallTimer timer;
  const auto d = fc.sample_delay(flags.samples, rng);
  std::printf(
      "%s Monte Carlo (%zu samples, seed %llu, %.2f s):\n"
      "  mean %.4f ns, sigma %.4f ns, min %.4f, max %.4f\n"
      "  quantiles: 90%% %.4f | 99%% %.4f | 99.87%% %.4f\n",
      m.netlist.name().c_str(), flags.samples,
      static_cast<unsigned long long>(flags.seed), timer.seconds(), d.mean(),
      d.stddev(), d.min(), d.max(), d.quantile(0.90), d.quantile(0.99),
      d.quantile(0.9987));
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  hssta_cli report  <in.bench> [--paths K]\n"
               "  hssta_cli extract <in.bench> <out.hstm> [--delta X]\n"
               "  hssta_cli mc      <in.bench> [--samples N] [--seed S]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 3) return usage();
    const std::string cmd = argv[1];
    const library::CellLibrary lib = library::default_90nm();
    if (cmd == "report")
      return cmd_report(argv[2], parse_flags(argc, argv, 3), lib);
    if (cmd == "extract") {
      if (argc < 4) return usage();
      return cmd_extract(argv[2], argv[3], parse_flags(argc, argv, 4), lib);
    }
    if (cmd == "mc") return cmd_mc(argv[2], parse_flags(argc, argv, 3), lib);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
